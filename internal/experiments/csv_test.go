package experiments

import (
	"strings"
	"testing"
)

func TestCSVBasic(t *testing.T) {
	r := &Report{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"x,y", `q"u`}},
	}
	got := r.CSV()
	want := "a,b\n1,2\n\"x,y\",\"q\"\"u\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVAllReportsParseable(t *testing.T) {
	for _, r := range All(testCtx) {
		out := r.CSV()
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 1+len(r.Rows) {
			t.Errorf("report %s: CSV has %d lines, want %d", r.ID, len(lines), 1+len(r.Rows))
		}
	}
}
