package experiments

import (
	"strings"
	"testing"
)

func TestCSVBasic(t *testing.T) {
	r := &Report{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"x,y", `q"u`}},
	}
	got := r.CSV()
	want := "a,b\n1,2\n\"x,y\",\"q\"\"u\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		rep  *Report
		want string
	}{
		{"empty report", &Report{}, ""},
		{"notes only", &Report{Notes: []string{"n"}}, ""},
		{"empty row", &Report{Header: []string{"a"}, Rows: [][]string{{}}}, "a\n\n"},
		{"row wider than header", &Report{
			Header: []string{"a"},
			Rows:   [][]string{{"1", "2", "3"}},
		}, "a\n1,2,3\n"},
		{"embedded newline", &Report{
			Header: []string{"h"},
			Rows:   [][]string{{"x\ny"}},
		}, "h\n\"x\ny\"\n"},
	}
	for _, tc := range cases {
		if got := tc.rep.CSV(); got != tc.want {
			t.Errorf("%s: CSV = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestRenderEdgeCases(t *testing.T) {
	// A row wider than the header must not panic, and the extra columns
	// must still render.
	r := &Report{
		ID: "x", Title: "t", PaperRef: "ref",
		Header: []string{"a"},
		Rows:   [][]string{{"1", "22", "333"}},
	}
	out := r.Render()
	if !strings.Contains(out, "333") {
		t.Errorf("wide row lost cells:\n%s", out)
	}

	// Notes-only report: just the title line and the notes.
	n := &Report{ID: "y", Title: "t", PaperRef: "ref", Notes: []string{"only note"}}
	out = n.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "only note") {
		t.Errorf("notes-only render:\n%s", out)
	}

	// Empty rows render as blank-ish lines without panicking.
	e := &Report{ID: "z", Title: "t", PaperRef: "ref", Header: []string{"h"}, Rows: [][]string{{}}}
	if out := e.Render(); !strings.Contains(out, "h") {
		t.Errorf("empty-row render:\n%s", out)
	}
}

func TestCSVAllReportsParseable(t *testing.T) {
	for _, r := range All(testCtx) {
		out := r.CSV()
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 1+len(r.Rows) {
			t.Errorf("report %s: CSV has %d lines, want %d", r.ID, len(lines), 1+len(r.Rows))
		}
	}
}
