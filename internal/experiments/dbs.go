package experiments

import (
	"fmt"

	"geoloc/internal/geo"
	"geoloc/internal/geodb"
	"geoloc/internal/stats"
)

// Fig7 reproduces Fig 7: CBG with all RIPE Atlas VPs versus the MaxMind
// free database and IPinfo.
func Fig7(ctx *Context) *Report {
	c := ctx.C
	var cbgErrs, mmErrs, iiErrs []float64
	mm := &geodb.MaxMindFree{W: c.W}
	ii := geodb.NewIPinfo(c.W)
	for ti := range c.Targets {
		truth := c.Targets[ti].Loc
		if est, ok := c.TargetRTT.LocateSubset(ti, nil, geo.TwoThirdsC); ok {
			cbgErrs = append(cbgErrs, geo.Distance(est, truth))
		}
		mmErrs = append(mmErrs, geo.Distance(mm.Lookup(c.Targets[ti]).Loc, truth))
		iiErrs = append(iiErrs, geo.Distance(ii.Lookup(c.Targets[ti]).Loc, truth))
	}
	rep := &Report{
		ID:       "fig7",
		Title:    "CBG with all VPs vs geolocation databases",
		PaperRef: "Fig 7 / §6",
		Header:   cdfHeader("source"),
		Rows: [][]string{
			cdfRow("All VPs (CBG)", cbgErrs),
			cdfRow(mm.Name(), mmErrs),
			cdfRow(ii.Name(), iiErrs),
		},
	}
	rep.Notes = append(rep.Notes,
		"paper: IPinfo 89% ≤40 km > CBG all VPs 73% > MaxMind free 55%")
	return rep
}

// Fig8 reproduces appendix C's Fig 8: the population-density distribution
// of the target set (it must cover both rural and urban areas).
func Fig8(ctx *Context) *Report {
	c := ctx.C
	var dens []float64
	for _, t := range c.Targets {
		dens = append(dens, c.W.PopGrid.DensityAt(t.Loc))
	}
	rep := &Report{
		ID:       "fig8",
		Title:    "Population density of the targets",
		PaperRef: "Fig 8 / appendix C",
		Header:   []string{"quantile", "people/km2"},
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		v, err := stats.Quantile(dens, q)
		if err != nil {
			continue
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("p%.0f", q*100), fmt.Sprintf("%.0f", v)})
	}
	rep.Notes = append(rep.Notes,
		"paper: the target set covers both rural and urban areas")
	return rep
}

// Baseline reproduces §7.1: the new baseline the paper sets for future
// geolocation techniques.
func Baseline(ctx *Context) *Report {
	c := ctx.C
	results := ctx.StreetResults()
	var cbgErrs, streetErrs []float64
	for ti := range c.Targets {
		truth := c.Targets[ti].Loc
		if est, ok := c.TargetRTT.LocateSubset(ti, nil, geo.TwoThirdsC); ok {
			cbgErrs = append(cbgErrs, geo.Distance(est, truth))
		}
		streetErrs = append(streetErrs, geo.Distance(results[ti].Estimate, truth))
	}
	rep := &Report{
		ID:       "baseline",
		Title:    "New baseline for future geolocation techniques",
		PaperRef: "§7.1",
		Header:   []string{"criterion", "value", "paper"},
		Rows: [][]string{
			{"CBG (all VPs) city level (≤40 km)", fmt.Sprintf("%.0f%%", 100*stats.FractionBelow(cbgErrs, 40)), "73%"},
			{"CBG (all VPs) street level (≤1 km)", fmt.Sprintf("%.0f%%", 100*stats.FractionBelow(cbgErrs, 1)), "11%"},
			{"street level technique city level (≤40 km)", fmt.Sprintf("%.0f%%", 100*stats.FractionBelow(streetErrs, 40)), "~73%"},
			{"CBG (all VPs) median error", fmt.Sprintf("%.1f km", stats.MustMedian(cbgErrs)), "~8 km"},
		},
	}
	rep.Notes = append(rep.Notes,
		"coverage: no technique can geolocate millions of IP addresses in a few months on RIPE Atlas (§5.1.3)")
	return rep
}
