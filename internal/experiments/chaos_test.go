package experiments

import (
	"math"
	"testing"

	"geoloc/internal/world"
)

// TestChaosDegradationMonotone is the acceptance gate of the chaos sweep:
// along the intensity ordering of ChaosProfiles, matrix coverage must not
// increase, every profile must complete the pipeline, and the realistic
// profile (≈1–5% loss) must keep the CBG median error within 2× of the
// fault-free run.
func TestChaosDegradationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault sweep")
	}
	rows := ChaosSweep(world.TinyConfig())
	if len(rows) < 3 {
		t.Fatalf("sweep produced %d rows", len(rows))
	}

	if rows[0].Coverage < 0.999 {
		t.Errorf("fault-free coverage = %.4f, want ~1", rows[0].Coverage)
	}
	// Fault-free failures are the simulator's naturally-unresponsive
	// destinations; the client must not retry or quarantine them.
	if rows[0].Retries != 0 || rows[0].Quarantines != 0 {
		t.Errorf("fault-free run has retries=%d quarantines=%d, want 0",
			rows[0].Retries, rows[0].Quarantines)
	}
	for i := 1; i < len(rows); i++ {
		// Allow a hair of slack: coverage is a ratio of two large counts
		// and adjacent profiles can tie.
		if rows[i].Coverage > rows[i-1].Coverage+1e-9 {
			t.Errorf("coverage not monotone: %s %.4f > %s %.4f",
				rows[i].Profile.Name, rows[i].Coverage,
				rows[i-1].Profile.Name, rows[i-1].Coverage)
		}
	}
	for _, r := range rows {
		if r.Located == 0 {
			t.Errorf("%s: CBG located no targets", r.Profile.Name)
		}
	}

	base := rows[0].MedianErrKm
	realistic := rows[2]
	if math.IsNaN(realistic.MedianErrKm) || realistic.MedianErrKm > 2*base {
		t.Errorf("realistic median error %.1f km exceeds 2x fault-free %.1f km",
			realistic.MedianErrKm, base)
	}
	if realistic.Retries == 0 {
		t.Errorf("realistic profile recorded no retries; client not engaged?")
	}
	if realistic.CampaignSec <= rows[0].CampaignSec {
		t.Errorf("realistic campaign (%.0fs) not slower than fault-free (%.0fs)",
			realistic.CampaignSec, rows[0].CampaignSec)
	}
}

// TestChaosReport checks the experiment renders a complete table.
func TestChaosReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault sweep")
	}
	rep := Chaos(nil)
	if len(rep.Rows) != len(ChaosProfiles()) {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), len(ChaosProfiles()))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Errorf("row %v has %d cells, header has %d", row, len(row), len(rep.Header))
		}
	}
}
