package experiments

import (
	"fmt"
	"math"

	"geoloc/internal/atlas"
	"geoloc/internal/core"
	"geoloc/internal/faults"
	"geoloc/internal/geo"
	"geoloc/internal/stats"
	"geoloc/internal/streetlevel"
	"geoloc/internal/world"
)

// ChaosProfiles is the fault-intensity sweep of the chaos experiment,
// ordered from no faults to hostile. The ordering is load-bearing: the
// degradation table (and its regression test) expects matrix coverage to
// be non-increasing along it.
func ChaosProfiles() []*faults.Profile {
	return []*faults.Profile{
		faults.None(),
		faults.Realistic().Scale(0.5),
		faults.Realistic(),
		faults.Degraded(),
		faults.Hostile(),
	}
}

// ChaosRow is one measured point of the fault-intensity sweep.
type ChaosRow struct {
	Profile *faults.Profile
	// Coverage is the fraction of off-diagonal target-matrix cells that
	// hold a usable RTT after retries.
	Coverage float64
	// MedianErrKm is the CBG median error over targets CBG could locate;
	// Located is how many it could.
	MedianErrKm float64
	Located     int
	// Client resilience counters for the whole campaign.
	Retries, Failures, Quarantines int64
	CreditsSpent                   int64
	CampaignSec                    float64
	// Street-level degradation under auxiliary-service faults, over
	// chaosStreetTargets targets: mapping queries the service failed,
	// stale-coordinate landmark resolutions, and how many targets still
	// resolved via a landmark versus falling back to the CBG seed.
	LookupFailures int64
	StaleSites     int64
	StreetLandmark int
	StreetCBG      int
}

// chaosStreetTargets is how many targets each profile's street-level
// degradation probe geolocates (capped by the world's target count).
const chaosStreetTargets = 6

// chaosCampaign runs one full resilient campaign under the profile and
// measures it. The world config is fixed so every row measures the same
// world under different fault intensities.
func chaosCampaign(cfg world.Config, prof *faults.Profile) ChaosRow {
	c := core.NewResilientCampaign(cfg, prof, atlas.DefaultClientConfig())
	c.BuildMatrices()

	row := ChaosRow{Profile: prof}

	cells, filled := 0, 0
	for vp := range c.TargetRTT.RTT {
		src := c.VPs[vp]
		for t := range c.TargetRTT.RTT[vp] {
			if src.ID == c.Targets[t].ID {
				continue
			}
			cells++
			if rtt := c.TargetRTT.RTT[vp][t]; rtt == rtt && rtt >= 0 {
				filled++
			}
		}
	}
	if cells > 0 {
		row.Coverage = float64(filled) / float64(cells)
	}

	var errs []float64
	for t := range c.Targets {
		est, ok := c.TargetRTT.LocateSubset(t, nil, geo.TwoThirdsC)
		if !ok {
			continue
		}
		errs = append(errs, c.ErrorKm(t, est))
	}
	row.Located = len(errs)
	if len(errs) > 0 {
		row.MedianErrKm = stats.MustMedian(errs)
	} else {
		row.MedianErrKm = math.NaN()
	}

	cs := c.Client.Stats()
	row.Retries = cs.Retries
	row.Failures = cs.Failures
	row.Quarantines = cs.Quarantines
	row.CreditsSpent = cs.CreditsSpent
	row.CampaignSec = cs.CampaignSec

	// Street-level probe: the three-tier technique over a handful of
	// targets, with the mapping/web services degraded by the same profile.
	// The point is the failure tabulation, not accuracy — the pipeline
	// must fall back tier by tier, never error.
	sl := streetlevel.New(c)
	n := chaosStreetTargets
	if n > len(c.Targets) {
		n = len(c.Targets)
	}
	for t := 0; t < n; t++ {
		res := sl.Geolocate(t)
		if res.Method == "landmark" {
			row.StreetLandmark++
		} else {
			row.StreetCBG++
		}
	}
	row.LookupFailures = sl.Map.LookupFailures()
	row.StaleSites = sl.Web.StaleSites()
	return row
}

// ChaosSweep measures every profile of ChaosProfiles against one world
// config and returns the rows in sweep order.
func ChaosSweep(cfg world.Config) []ChaosRow {
	profs := ChaosProfiles()
	rows := make([]ChaosRow, len(profs))
	// Campaigns are independent (each builds its own world and platform),
	// so the sweep runs them concurrently; each campaign's internal
	// matrix build is itself parallel, so the speedup is modest but free.
	parallelFor(len(profs), func(i int) {
		rows[i] = chaosCampaign(cfg, profs[i])
	})
	return rows
}

// Chaos sweeps fault intensity over a dedicated small world and reports
// how the pipeline degrades: matrix coverage, CBG accuracy, retry and
// failure counts, credit overhead, and the simulated campaign duration.
// It always runs on the tiny world — it rebuilds and re-measures the
// world once per profile, which at paper scale would dwarf every other
// experiment — so the table reads as degradation shape, not as a
// paper-scale accuracy claim.
func Chaos(ctx *Context) *Report {
	rep := &Report{
		ID:       "chaos",
		Title:    "Pipeline degradation under injected platform faults",
		PaperRef: "robustness extension (no paper artifact)",
		Header: []string{"profile", "coverage", "located", "median(km)",
			"retries", "failures", "quarantines", "credits", "campaign(h)",
			"lookupfail", "stale", "street(lm/cbg)"},
	}
	rows := ChaosSweep(world.TinyConfig())
	var base float64
	for i, r := range rows {
		med := "-"
		if !math.IsNaN(r.MedianErrKm) {
			med = fmt.Sprintf("%.1f", r.MedianErrKm)
		}
		rep.Rows = append(rep.Rows, []string{
			r.Profile.Name,
			fmt.Sprintf("%.1f%%", 100*r.Coverage),
			fmt.Sprintf("%d", r.Located),
			med,
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%d", r.Quarantines),
			fmt.Sprintf("%d", r.CreditsSpent),
			fmt.Sprintf("%.1f", r.CampaignSec/3600),
			fmt.Sprintf("%d", r.LookupFailures),
			fmt.Sprintf("%d", r.StaleSites),
			fmt.Sprintf("%d/%d", r.StreetLandmark, r.StreetCBG),
		})
		if i == 0 {
			base = r.MedianErrKm
		}
	}
	if base > 0 {
		for _, r := range rows[1:] {
			if !math.IsNaN(r.MedianErrKm) {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s: median error %.2fx fault-free", r.Profile.Name, r.MedianErrKm/base))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"sweep runs on the tiny world regardless of -scale; rows share one world config")
	return rep
}
