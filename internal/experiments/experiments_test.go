package experiments

import (
	"fmt"
	"strings"
	"testing"

	"geoloc/internal/rhash"
	"geoloc/internal/world"
)

// testCtx is a shared tiny-world context for the package tests.
var testCtx = NewContext(world.TinyConfig(), QuickOptions())

func TestAllExperimentsProduceReports(t *testing.T) {
	reports := All(testCtx)
	if len(reports) != len(Registry()) {
		t.Fatalf("All produced %d reports, want %d", len(reports), len(Registry()))
	}
	seen := make(map[string]bool)
	for _, r := range reports {
		if r.ID == "" || r.Title == "" || r.PaperRef == "" {
			t.Errorf("report %q missing metadata", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate report ID %q", r.ID)
		}
		seen[r.ID] = true
		if len(r.Rows) == 0 {
			t.Errorf("report %q has no rows", r.ID)
		}
		out := r.Render()
		if !strings.Contains(out, r.ID) {
			t.Errorf("report %q render missing its ID", r.ID)
		}
	}
}

func TestTable1Counts(t *testing.T) {
	r := Table1(testCtx)
	cfg := world.TinyConfig()
	want := 0
	for _, n := range cfg.AnchorsPerContinent {
		want += n
	}
	if r.Rows[0][1] != itoa(want) {
		t.Errorf("targets row = %q, want %d", r.Rows[0][1], want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestTable2RowsSumToTotals(t *testing.T) {
	r := Table2(testCtx)
	if len(r.Rows) != 3 {
		t.Fatalf("Table2 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != 7 { // dataset + 6 categories
			t.Fatalf("Table2 row has %d cells", len(row))
		}
	}
}

func TestFig2aMonotonicImprovement(t *testing.T) {
	r := Fig2a(testCtx)
	if len(r.Rows) < 2 {
		t.Fatal("Fig2a needs at least two sizes")
	}
	// Median error with the largest subset must beat the smallest.
	first := parseFloat(t, r.Rows[0][4])
	last := parseFloat(t, r.Rows[len(r.Rows)-1][4])
	if last >= first {
		t.Errorf("more VPs should reduce median error: %v -> %v", first, last)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig2cRemovingCloseVPsHurts(t *testing.T) {
	r := Fig2c(testCtx)
	all := parseFloat(t, r.Rows[0][2])
	no40 := parseFloat(t, r.Rows[1][2])
	if no40 <= all {
		t.Errorf("removing close VPs should raise median error: %v -> %v", all, no40)
	}
}

func TestFig3cOverheadDecreases(t *testing.T) {
	r := Fig3c(testCtx)
	if len(r.Rows) < 2 {
		t.Fatal("Fig3c needs rows")
	}
	lastRow := r.Rows[len(r.Rows)-1]
	if lastRow[0] != "All" {
		t.Fatal("last row should be the original algorithm")
	}
}

func TestFig5aHasThreeTechniques(t *testing.T) {
	r := Fig5a(testCtx)
	if len(r.Rows) != 3 {
		t.Fatalf("Fig5a has %d rows", len(r.Rows))
	}
	// The oracle must (weakly) beat the street level technique at median.
	street := parseFloat(t, r.Rows[0][2])
	oracle := parseFloat(t, r.Rows[2][2])
	if oracle > street+1e-9 {
		t.Errorf("oracle median %.1f should not exceed street median %.1f", oracle, street)
	}
}

func TestFig5bCheckedSubset(t *testing.T) {
	r := Fig5b(testCtx)
	if len(r.Rows) != 4 {
		t.Fatalf("Fig5b has %d rows", len(r.Rows))
	}
	// Latency-checked counts can never exceed the optimistic counts.
	for _, row := range r.Rows {
		plain := parseLeadingInt(t, row[1])
		checked := parseLeadingInt(t, row[2])
		if checked > plain {
			t.Errorf("checked %d > plain %d for %s", checked, plain, row[0])
		}
	}
}

func parseLeadingInt(t *testing.T, s string) int {
	t.Helper()
	n := 0
	seen := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
			seen = true
		} else if seen {
			break
		}
	}
	return n
}

func TestFig6aFractionsInRange(t *testing.T) {
	r := Fig6a(testCtx)
	for _, row := range r.Rows {
		v := parseFloat(t, row[1])
		if v < 0 || v > 1 {
			t.Errorf("unusable fraction %v out of range", v)
		}
	}
}

func TestFig6cTimesPositive(t *testing.T) {
	r := Fig6c(testCtx)
	prev := 0.0
	for _, row := range r.Rows {
		v := parseFloat(t, row[1])
		if v < prev {
			t.Errorf("quantiles should be non-decreasing: %v after %v", v, prev)
		}
		prev = v
	}
	if prev <= 0 {
		t.Error("p99 time should be positive")
	}
}

func TestFig7Ordering(t *testing.T) {
	r := Fig7(testCtx)
	if len(r.Rows) != 3 {
		t.Fatalf("Fig7 has %d rows", len(r.Rows))
	}
}

func TestBaselineHasPaperColumn(t *testing.T) {
	r := Baseline(testCtx)
	for _, row := range r.Rows {
		if len(row) != 3 {
			t.Fatalf("baseline row %v should have 3 cells", row)
		}
	}
}

func TestRandomSubsetProperties(t *testing.T) {
	st := rhash.New(99)
	for _, size := range []int{0, 1, 5, 50} {
		sub := randomSubset(st, 50, size)
		if size <= 50 && len(sub) != size {
			t.Fatalf("subset size %d, want %d", len(sub), size)
		}
		seen := make(map[int]bool)
		for _, v := range sub {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("invalid subset %v", sub)
			}
			seen[v] = true
		}
	}
	if len(randomSubset(st, 5, 10)) != 5 {
		t.Error("oversized request should return all indices")
	}
}

func TestReportRenderAligned(t *testing.T) {
	r := &Report{
		ID: "x", Title: "T", PaperRef: "ref",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := r.Render()
	if !strings.Contains(out, "note: hello") {
		t.Error("render missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 2 rows + note
		t.Errorf("render has %d lines, want 5", len(lines))
	}
}
