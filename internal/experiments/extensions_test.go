package experiments

import (
	"strings"
	"testing"
)

func TestDeployReport(t *testing.T) {
	r := Deploy(testCtx)
	if len(r.Rows) != 3 {
		t.Fatalf("deploy has %d rows", len(r.Rows))
	}
	// Probes must be dramatically slower than the 2012 deployment: that is
	// the §5.1.3 result.
	paperMonths := monthsOf(t, r.Rows[0][2])
	probeMonths := monthsOf(t, r.Rows[2][2])
	if probeMonths < 10*paperMonths {
		t.Errorf("probe campaign (%.1f months) should dwarf the 2012 one (%.1f months)",
			probeMonths, paperMonths)
	}
	anchorMonths := monthsOf(t, r.Rows[1][2])
	if anchorMonths >= probeMonths {
		t.Error("anchors should be faster than probes")
	}
}

func monthsOf(t *testing.T, s string) float64 {
	t.Helper()
	return parseFloat(t, strings.Fields(s)[0])
}

func TestMultiStepReport(t *testing.T) {
	r := MultiStep(testCtx)
	if len(r.Rows) == 0 {
		t.Fatal("multistep produced no rows")
	}
	for _, row := range r.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
		if err := parseFloat(t, row[1]); err < 0 {
			t.Error("negative median error")
		}
	}
}

func TestShortestPingReport(t *testing.T) {
	r := ShortestPing(testCtx)
	if len(r.Rows) != 2 {
		t.Fatalf("shortestping has %d rows", len(r.Rows))
	}
	cbgMed := parseFloat(t, r.Rows[0][2])
	spMed := parseFloat(t, r.Rows[1][2])
	// The paper treats the techniques as similar; they must be within an
	// order of magnitude of each other.
	if cbgMed > 10*spMed+10 || spMed > 10*cbgMed+10 {
		t.Errorf("CBG (%.1f) and shortest ping (%.1f) too far apart", cbgMed, spMed)
	}
}

func TestAblationsReport(t *testing.T) {
	r := Ablations(testCtx)
	if len(r.Rows) < 4 {
		t.Fatalf("ablations has %d rows, want ≥4 (two speeds + two first steps)", len(r.Rows))
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0]] = true
	}
	if !names["tier-1 speed of Internet"] || !names["two-step first step"] {
		t.Errorf("ablation families missing: %v", names)
	}
}
