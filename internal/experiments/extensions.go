package experiments

import (
	"fmt"
	"math"

	"geoloc/internal/geo"
	"geoloc/internal/stats"
	"geoloc/internal/vpsel"
)

// Deploy reproduces the deployability analysis of §5.1.3: the original VP
// selection algorithm needs every VP to probe three representatives of
// every routable /24, which exceeds RIPE Atlas probing budgets by orders
// of magnitude.
func Deploy(ctx *Context) *Report {
	c := ctx.C
	const routable24s = 11_500_000 // ~35% of the 2012 IPv4 space, per the paper

	// Packets each VP must send to cover every /24 once (3 reps, 3-packet
	// pings).
	packetsPerVP := int64(routable24s) * vpsel.RepPingsPerVP * int64(c.Platform.Sim.Cfg.PingPackets)

	probeSecs := c.Platform.CampaignSeconds(c.SanitizedProbes, int(packetsPerVP))
	anchorSecs := c.Platform.CampaignSeconds(c.SanitizedAnchors, int(packetsPerVP))

	// The authors' 2012 deployment sustained 500 pps per VP.
	secsAt500pps := float64(packetsPerVP) / 500

	toMonths := func(secs float64) string {
		return fmt.Sprintf("%.1f months", secs/(30*24*3600))
	}
	rep := &Report{
		ID:       "deploy",
		Title:    "Deployability of the original VP selection on RIPE Atlas",
		PaperRef: "§5.1.3",
		Header:   []string{"platform", "probing rate", "time to cover all routable /24s"},
		Rows: [][]string{
			{"2012 paper deployment", "500 pps/VP", toMonths(secsAt500pps)},
			{"RIPE Atlas anchors", "200-400 pps", toMonths(anchorSecs)},
			{"RIPE Atlas probes", "4-12 pps", toMonths(probeSecs)},
		},
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("per-VP workload: %.1fM packets (3 reps × 3 packets × %.1fM /24s)",
			float64(packetsPerVP)/1e6, float64(routable24s)/1e6),
		"paper: probes cannot sustain 500 pps for geolocation alone — the original result cannot be replicated on RIPE Atlas")
	return rep
}

// MultiStep evaluates the paper's §7.2.3 future-work suggestion: extending
// the two-step VP selection to multiple rounds and finding the overhead
// minimum.
func MultiStep(ctx *Context) *Report {
	c := ctx.C
	meta := make([]vpsel.VPMeta, len(c.VPs))
	locs := make([]geo.Point, len(c.VPs))
	for i, h := range c.VPs {
		meta[i] = vpsel.VPMeta{AS: h.AS, City: h.City}
		locs[i] = h.Reported
	}
	firstStep := vpsel.GreedyCover(locs, 10)
	original := vpsel.OriginalOverheadPings(len(c.VPs), len(c.Targets), 10)

	rep := &Report{
		ID:       "multistep",
		Title:    "Multi-round VP selection (two-step generalized)",
		PaperRef: "§7.2.3 (proposed future work)",
		Header:   []string{"rounds", "median error (km)", "measurements", "% of original", "extra API rounds"},
	}
	for _, rounds := range []int{2, 3, 4} {
		errs := make([]float64, len(c.Targets))
		pings := make([]int64, len(c.Targets))
		roundsUsed := make([]int, len(c.Targets))
		parallelFor(len(c.Targets), func(ti int) {
			errs[ti] = math.NaN()
			res, ok := vpsel.MultiStepSelect(c.RepRTT, meta, firstStep, ti, rounds, 100)
			pings[ti] = res.Pings
			roundsUsed[ti] = res.Rounds
			if !ok {
				return
			}
			if est, ok := c.TargetRTT.LocateSubset(ti, []int{res.SelectedVP}, geo.TwoThirdsC); ok {
				errs[ti] = c.ErrorKm(ti, est)
			}
		})
		clean := dropNaN(errs)
		if len(clean) == 0 {
			continue
		}
		var total int64
		for _, p := range pings {
			total += p
		}
		// Index-addressed writes above, ordered reduction here — the par
		// determinism contract (a shared racy max would tear under -race).
		apiRounds := 0
		for _, r := range roundsUsed {
			if r > apiRounds {
				apiRounds = r
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%.1f", stats.MustMedian(clean)),
			fmt.Sprintf("%.2fM", float64(total)/1e6),
			fmt.Sprintf("%.1f%%", 100*float64(total)/float64(original)),
			fmt.Sprintf("%d", apiRounds-2),
		})
	}
	rep.Notes = append(rep.Notes,
		"each extra round costs one more measurement API round-trip (minutes), which §7.2.3 argues is acceptable")
	return rep
}

// ShortestPing compares Shortest Ping against CBG over the full VP set —
// the paper states their results are similar (§5.1, 'results with shortest
// ping are similar').
func ShortestPing(ctx *Context) *Report {
	c := ctx.C
	var cbgErrs, spErrs []float64
	for ti := range c.Targets {
		if est, ok := c.TargetRTT.LocateSubset(ti, nil, geo.TwoThirdsC); ok {
			cbgErrs = append(cbgErrs, c.ErrorKm(ti, est))
		}
		if est, ok := c.TargetRTT.ShortestPingSubset(ti, nil); ok {
			spErrs = append(spErrs, c.ErrorKm(ti, est))
		}
	}
	rep := &Report{
		ID:       "shortestping",
		Title:    "Shortest Ping vs CBG, all vantage points",
		PaperRef: "§3 / §5.1 (\"results with shortest ping are similar\")",
		Header:   cdfHeader("technique"),
		Rows: [][]string{
			cdfRow("CBG", cbgErrs),
			cdfRow("Shortest Ping", spErrs),
		},
	}
	return rep
}

// Ablations quantifies the design choices DESIGN.md §6 calls out, in
// report form (the bench harness measures their costs).
func Ablations(ctx *Context) *Report {
	c := ctx.C
	rep := &Report{
		ID:       "ablations",
		Title:    "Design-choice ablations",
		PaperRef: "DESIGN.md §6",
		Header:   []string{"ablation", "variant", "median error (km)"},
	}

	// Speed-of-Internet constant for anchor-only CBG (tier 1).
	rows := c.AnchorVPIndices()
	for _, tc := range []struct {
		name  string
		speed float64
	}{
		{"2/3c", geo.TwoThirdsC},
		{"4/9c", geo.FourNinthsC},
	} {
		var errs []float64
		for ti := range c.Targets {
			if est, ok := c.TargetRTT.LocateSubset(ti, rows, tc.speed); ok {
				errs = append(errs, c.ErrorKm(ti, est))
			}
		}
		if len(errs) > 0 {
			rep.Rows = append(rep.Rows, []string{"tier-1 speed of Internet", tc.name,
				fmt.Sprintf("%.1f", stats.MustMedian(errs))})
		}
	}

	// Greedy vs random first step for the two-step selection.
	meta := make([]vpsel.VPMeta, len(c.VPs))
	locs := make([]geo.Point, len(c.VPs))
	for i, h := range c.VPs {
		meta[i] = vpsel.VPMeta{AS: h.AS, City: h.City}
		locs[i] = h.Reported
	}
	greedy := vpsel.GreedyCover(locs, 10)
	random := make([]int, 10)
	for i := range random {
		random[i] = (i * 7919) % len(c.VPs)
	}
	for _, tc := range []struct {
		name      string
		firstStep []int
	}{
		{"greedy cover", greedy},
		{"random", random},
	} {
		errs := make([]float64, len(c.Targets))
		parallelFor(len(c.Targets), func(ti int) {
			errs[ti] = math.NaN()
			res, ok := vpsel.TwoStepSelect(c.RepRTT, meta, tc.firstStep, ti)
			if !ok {
				return
			}
			if est, ok := c.TargetRTT.LocateSubset(ti, []int{res.SelectedVP}, geo.TwoThirdsC); ok {
				errs[ti] = c.ErrorKm(ti, est)
			}
		})
		clean := dropNaN(errs)
		if len(clean) > 0 {
			rep.Rows = append(rep.Rows, []string{"two-step first step", tc.name,
				fmt.Sprintf("%.1f", stats.MustMedian(clean))})
		}
	}
	rep.Notes = append(rep.Notes,
		"delay-aggregation (min vs median D1+D2) and CBG region-filtering ablations are in bench_test.go (BenchmarkAblation*)")
	return rep
}
