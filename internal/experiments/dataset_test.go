package experiments

import (
	"strings"
	"testing"
)

func TestWriteBaselineDataset(t *testing.T) {
	var b strings.Builder
	if err := WriteBaselineDataset(testCtx, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 1+len(testCtx.C.Targets) {
		t.Fatalf("dataset has %d lines, want %d", len(lines), 1+len(testCtx.C.Targets))
	}
	header := strings.Split(lines[0], ",")
	if len(header) != 17 {
		t.Fatalf("header has %d columns: %v", len(header), header)
	}
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 17 {
			t.Fatalf("row %d has %d columns", i, len(cols))
		}
		if cols[16] != "landmark" && cols[16] != "cbg" {
			t.Fatalf("row %d has method %q", i, cols[16])
		}
	}
}

func TestWriteBaselineDatasetDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteBaselineDataset(testCtx, &a); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaselineDataset(testCtx, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("baseline dataset not deterministic")
	}
}
