package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geoloc/internal/ipaddr"
)

// openMappedBytes writes an in-memory image to a file and opens it with
// OpenMapped — the corruption tests work on byte images, the mapped
// reader only opens files.
func openMappedBytes(t *testing.T, img []byte) (*Reader2, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img.geodset2")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	return OpenMapped(path)
}

// TestOpenMappedOracle: the mapped reader, the positioned reader, and a
// linear scan of the source records agree on every probe — present
// prefixes, absent neighbours, and the key-space extremes — and the
// mapped reader actually mapped (on platforms that support it).
func TestOpenMappedOracle(t *testing.T) {
	ds := compiled(t)
	for _, blockSize := range []int{1, 4, len(ds.Records) + 7} {
		t.Run(fmt.Sprintf("block=%d", blockSize), func(t *testing.T) {
			path := writeV2(t, ds, blockSize)
			m, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if mmapSupported && !m.Mapped() {
				t.Fatal("mmap is supported here but OpenMapped fell back to positioned reads")
			}
			r2, err := Open2(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()

			linear := func(p ipaddr.Prefix24) (Record, bool) {
				for _, r := range ds.Records {
					if r.Prefix == p {
						return r, true
					}
				}
				return Record{}, false
			}
			probes := []ipaddr.Prefix24{0, 1, 1 << 23, 0xFFFFFF}
			for _, r := range ds.Records {
				probes = append(probes, r.Prefix)
				if r.Prefix > 0 {
					probes = append(probes, r.Prefix-1)
				}
				if r.Prefix < 0xFFFFFF {
					probes = append(probes, r.Prefix+1)
				}
			}
			for _, p := range probes {
				wantR, wantOK := linear(p)
				preadR, preadOK, err := r2.Lookup(p)
				if err != nil {
					t.Fatalf("pread lookup %s: %v", p, err)
				}
				mapR, mapOK, err := m.Lookup(p)
				if err != nil {
					t.Fatalf("mapped lookup %s: %v", p, err)
				}
				if mapOK != wantOK || mapR != wantR || preadOK != wantOK || preadR != wantR {
					t.Fatalf("lookup %s: mapped (%+v, %v), pread (%+v, %v), linear scan says (%+v, %v)",
						p, mapR, mapOK, preadR, preadOK, wantR, wantOK)
				}
			}

			// The scan path agrees too.
			i := 0
			if err := m.All(func(r Record) error {
				if r != ds.Records[i] {
					return fmt.Errorf("record %d: %+v want %+v", i, r, ds.Records[i])
				}
				i++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if i != len(ds.Records) {
				t.Fatalf("mapped scan stopped at %d of %d", i, len(ds.Records))
			}
		})
	}
}

// TestOpenMappedErrorTaxonomy: a mapped reader must reject or surface
// every kind of damage with the package's named errors, never a panic —
// eager damage (footer, index, magic, truncation) at open, lazily
// validated damage (inside a block) on the first touch through the
// mapping.
func TestOpenMappedErrorTaxonomy(t *testing.T) {
	ds := compiled(t)
	path := writeV2(t, ds, 4)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] ^= 0x01
		if _, err := openMappedBytes(t, bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})

	t.Run("truncation-sweep", func(t *testing.T) {
		// Same contract as the positioned reader: a cut anywhere fails at
		// open with a named error. Sampled cuts plus the structural
		// boundaries keep the file-backed sweep fast.
		cuts := []int{0, 1, len(Magic2), len(Magic2) + frameOverhead,
			len(img) - footerLen, len(img) - footerLen + 16, len(img) - 1}
		for c := 7; c < len(img); c += 13 {
			cuts = append(cuts, c)
		}
		for _, cut := range cuts {
			_, err := openMappedBytes(t, img[:cut])
			if err == nil {
				t.Fatalf("cut %d: truncated file mapped cleanly", cut)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, ErrBadMagic) {
				t.Fatalf("cut %d: unnamed error %v", cut, err)
			}
		}
	})

	t.Run("footer-crc", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)-footerLen] ^= 0x01
		if _, err := openMappedBytes(t, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("block-crc-first-touch", func(t *testing.T) {
		// Damage inside a block is invisible to open-time validation; the
		// first lookup that touches the block through the mapping must
		// report ErrCorrupt — and keep reporting it (the verified bit is
		// only ever set after a clean check).
		hdrPlen := int(binary.LittleEndian.Uint32(img[len(Magic2)+1:]))
		blockOff := len(Magic2) + frameOverhead + hdrPlen
		bad := append([]byte(nil), img...)
		bad[blockOff+frameOverhead+2+8] ^= 0x40
		m, err := openMappedBytes(t, bad)
		if err != nil {
			t.Fatalf("open rejected lazily-validated damage: %v", err)
		}
		defer m.Close()
		if mmapSupported && !m.Mapped() {
			t.Fatal("expected a mapped reader")
		}
		for try := 0; try < 2; try++ {
			if _, _, err := m.Lookup(ds.Records[0].Prefix); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("try %d: mapped lookup into torn block: got %v, want ErrCorrupt", try, err)
			}
		}
		if err := m.All(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mapped scan over torn block: got %v, want ErrCorrupt", err)
		}
		// Undamaged blocks still answer.
		last := ds.Records[len(ds.Records)-1]
		if got, ok, err := m.Lookup(last.Prefix); err != nil || !ok || got != last {
			t.Fatalf("undamaged block after torn block: got (%+v, %v, %v)", got, ok, err)
		}
	})

	t.Run("reordered-block-first-touch", func(t *testing.T) {
		// A re-sealed CRC cannot mask a sort violation.
		hdrPlen := int(binary.LittleEndian.Uint32(img[len(Magic2)+1:]))
		blockOff := len(Magic2) + frameOverhead + hdrPlen
		bad := append([]byte(nil), img...)
		r0 := blockOff + frameOverhead + 2
		tmpRec := make([]byte, recordPayloadLen)
		copy(tmpRec, bad[r0:r0+recordPayloadLen])
		copy(bad[r0:r0+recordPayloadLen], bad[r0+recordPayloadLen:r0+2*recordPayloadLen])
		copy(bad[r0+recordPayloadLen:r0+2*recordPayloadLen], tmpRec)
		patchFrameCRC(bad, blockOff)
		m, err := openMappedBytes(t, bad)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open: got %v, want ErrCorrupt", err)
			}
			return
		}
		defer m.Close()
		if _, _, err := m.Lookup(ds.Records[0].Prefix); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mapped lookup into reordered block: got %v, want ErrCorrupt", err)
		}
	})
}

// TestMappedPinLifecycle: the generation-pinned close protocol. A pinned
// reader survives Close (the hot-swap case: in-flight requests still
// hold the retired generation); the last Unpin releases it; a released
// reader can never be re-pinned; Close is idempotent.
func TestMappedPinLifecycle(t *testing.T) {
	ds := compiled(t)
	m, err := OpenMapped(writeV2(t, ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !m.TryPin() {
		t.Fatal("TryPin on a live reader failed")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The owner reference is gone but our pin keeps the mapping alive.
	want := ds.Records[0]
	if got, ok, err := m.Lookup(want.Prefix); err != nil || !ok || got != want {
		t.Fatalf("lookup on pinned post-Close reader: (%+v, %v, %v)", got, ok, err)
	}
	if err := m.Close(); err != nil { // idempotent: must not steal our pin
		t.Fatal(err)
	}
	if got, ok, err := m.Lookup(want.Prefix); err != nil || !ok || got != want {
		t.Fatalf("lookup after double Close: (%+v, %v, %v)", got, ok, err)
	}
	m.Unpin()
	if m.TryPin() {
		t.Fatal("TryPin resurrected a fully released reader")
	}
}

// TestMappedConcurrentFirstTouch: many goroutines race the first-touch
// verification of the same blocks; everyone must see consistent answers
// (run under -race in CI).
func TestMappedConcurrentFirstTouch(t *testing.T) {
	ds := compiled(t)
	m, err := OpenMapped(writeV2(t, ds, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for i := (g * 7) % len(ds.Records); i < len(ds.Records); i++ {
					want := ds.Records[i]
					got, ok, err := m.Lookup(want.Prefix)
					if err != nil || !ok || got != want {
						errs <- fmt.Errorf("goroutine %d: lookup %s: (%+v, %v, %v)", g, want.Prefix, got, ok, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWarmBlocksMapped: warming a mapped reader verifies exactly the
// intersecting blocks (their verified bits flip), and warming a
// positioned reader fills the LRU without overflowing it.
func TestWarmBlocks(t *testing.T) {
	ds := compiled(t)
	path := writeV2(t, ds, 4)
	lo := ds.Records[0].Prefix
	hi := ds.Records[len(ds.Records)/2].Prefix

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		n, err := m.WarmBlocks(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("mapped warm touched no blocks")
		}
	}

	r2, err := Open2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r2.SetCacheRange(lo, hi)
	n, err := r2.WarmBlocks(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("pread warm filled no blocks")
	}
	if got, capacity := r2.cache.len(), r2.cache.capacity(); got > capacity || got == 0 {
		t.Fatalf("warm left %d cached blocks, capacity %d", got, capacity)
	}
	// Out-of-range lookups answer but are not admitted to the cache.
	before := r2.cache.len()
	out := ds.Records[len(ds.Records)-1]
	if out.Prefix > hi {
		if got, ok, err := r2.Lookup(out.Prefix); err != nil || !ok || got != out {
			t.Fatalf("out-of-range lookup: (%+v, %v, %v)", got, ok, err)
		}
		if after := r2.cache.len(); after != before {
			t.Fatalf("out-of-range lookup changed cache population %d -> %d", before, after)
		}
	}
}

// TestMappedLookupAllocs gates the mapped hot path: after first touch, a
// lookup through the mapping is allocation-free.
func TestMappedLookupAllocs(t *testing.T) {
	ds := compiled(t)
	m, err := OpenMapped(writeV2(t, ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Mapped() {
		t.Skip("mmap unsupported on this platform")
	}
	hit := ds.Records[len(ds.Records)/2].Prefix
	miss := hit + 1
	if _, _, err := m.Lookup(hit); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := m.Lookup(hit); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Lookup(miss); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("mapped Lookup allocates %.1f times per hit+miss pair, want 0", n)
	}
}
