// Package dataset turns a finished measurement campaign into the paper's
// end product: a publicly servable per-/24 IP geolocation dataset. Each
// record maps one /24 prefix to an estimated location, a CBG confidence
// radius (HLOC, arXiv:1706.09331, argues multi-source geolocation answers
// are unusable without one), a method tag saying which technique produced
// the estimate, and a sanitized flag recording whether the underlying
// vantage data survived the paper's §4.3 speed-of-Internet sanitization.
//
// The on-disk artifact reuses the checkpoint journal's framing style
// (DESIGN.md §3.3) because it earned its keep there:
//
//	magic "GEODSET1" (8 bytes)
//	record*            kind u8 | payloadLen u32 | crc32(kind‖payload) u32 | payload
//
// with a mandatory first header record (format version, campaign config
// hash, world seed, fault profile). Unlike a journal, a dataset file is
// written atomically and never appended to, so a torn tail is not a
// crash signature but damage: the decoder rejects it with ErrTruncated
// instead of dropping it.
package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"geoloc/internal/cbg"
	"geoloc/internal/core"
	"geoloc/internal/geo"
	"geoloc/internal/ipaddr"
	"geoloc/internal/ipindex"
	"geoloc/internal/streetlevel"
	"geoloc/internal/telemetry"
)

// Magic identifies a dataset artifact file.
const Magic = "GEODSET1"

// Version is the current dataset format version.
const Version = 1

// maxPayload bounds a single record frame so corrupt length bytes cannot
// drive a huge allocation.
const maxPayload = 1 << 20

// frameOverhead is kind (1) + payload length (4) + CRC (4).
const frameOverhead = 9

// Record kinds.
const (
	kindHeader byte = 0
	kindRecord byte = 1
)

// recordPayloadLen is the fixed encoded size of one Record payload:
// prefix u32, lat f64, lon f64, radius f64, method u8, flags u8.
const recordPayloadLen = 4 + 8 + 8 + 8 + 1 + 1

// flagSanitized marks a record whose inputs survived §4.3 sanitization.
const flagSanitized byte = 1

// Named decode failures. Callers match with errors.Is.
var (
	// ErrBadMagic: the file is not a dataset artifact.
	ErrBadMagic = errors.New("dataset: bad magic")
	// ErrBadVersion: written by an incompatible format version.
	ErrBadVersion = errors.New("dataset: unsupported format version")
	// ErrCorrupt: a frame failed its CRC or a payload is malformed.
	ErrCorrupt = errors.New("dataset: artifact corrupt")
	// ErrTruncated: the file ends mid-frame. Datasets are written
	// atomically, so unlike a checkpoint journal a torn tail is damage.
	ErrTruncated = errors.New("dataset: artifact truncated")
	// ErrNoHeader: no decodable header record at the start of the file.
	ErrNoHeader = errors.New("dataset: missing header record")
)

// Method tags which technique produced a record's estimate.
type Method uint8

// Method tags, in ascending trust-in-measurement order.
const (
	// MethodReported: no measurement backs the record; the location is
	// the platform-reported one (only unsanitized records use this).
	MethodReported Method = iota
	// MethodShortestPing: the CBG region was empty; the estimate is the
	// lowest-RTT vantage point's location.
	MethodShortestPing
	// MethodCBG: centroid of the CBG constraint intersection.
	MethodCBG
	// MethodStreetCBG: street-level pipeline that fell back to its CBG
	// tier-1 seed.
	MethodStreetCBG
	// MethodStreetLandmark: street-level landmark estimate.
	MethodStreetLandmark
	numMethods
)

// String implements fmt.Stringer with stable wire-format names.
func (m Method) String() string {
	switch m {
	case MethodReported:
		return "reported"
	case MethodShortestPing:
		return "shortest-ping"
	case MethodCBG:
		return "cbg"
	case MethodStreetCBG:
		return "street-cbg"
	case MethodStreetLandmark:
		return "street-landmark"
	default:
		return fmt.Sprintf("method-%d", uint8(m))
	}
}

// Record is one dataset row: everything a query-time consumer learns
// about addresses inside one /24.
type Record struct {
	// Prefix is the /24 the record covers.
	Prefix ipaddr.Prefix24
	// Centroid is the location estimate for the prefix.
	Centroid geo.Point
	// RadiusKm is the CBG confidence radius: the maximum distance from
	// the centroid to any sampled point of the constraint intersection.
	// Zero means no measured confidence (MethodReported records).
	RadiusKm float64
	// Method says which technique produced Centroid.
	Method Method
	// Sanitized records whether the estimate is backed by SOI-sanitized
	// measurements; unsanitized records carry untrusted reported
	// locations and must be treated accordingly by consumers.
	Sanitized bool
}

// Header identifies the campaign a dataset was compiled from.
type Header struct {
	Version    uint32
	ConfigHash uint64
	Seed       uint64
	Profile    string
}

// Dataset is a decoded (or freshly compiled) artifact. Records are sorted
// by prefix, one record per prefix.
type Dataset struct {
	Hdr     Header
	Records []Record
}

// meters holds the package's instrumentation (observational only).
var meters = struct {
	compiled *telemetry.Counter
	encodes  *telemetry.Counter
	decodes  *telemetry.Counter
	badLoads *telemetry.Counter
}{
	compiled: telemetry.Default().Counter("dataset.records_compiled"),
	encodes:  telemetry.Default().Counter("dataset.encodes"),
	decodes:  telemetry.Default().Counter("dataset.decodes"),
	badLoads: telemetry.Default().Counter("dataset.load_errors"),
}

// encodeHeader serializes a header record payload (same layout as the
// checkpoint journal header).
func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, 4+8+8+2+len(h.Profile))
	buf = binary.LittleEndian.AppendUint32(buf, h.Version)
	buf = binary.LittleEndian.AppendUint64(buf, h.ConfigHash)
	buf = binary.LittleEndian.AppendUint64(buf, h.Seed)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.Profile)))
	return append(buf, h.Profile...)
}

// decodeHeader parses a header record payload.
func decodeHeader(payload []byte) (Header, error) {
	if len(payload) < 4+8+8+2 {
		return Header{}, fmt.Errorf("%w: header payload too short", ErrCorrupt)
	}
	h := Header{
		Version:    binary.LittleEndian.Uint32(payload[0:]),
		ConfigHash: binary.LittleEndian.Uint64(payload[4:]),
		Seed:       binary.LittleEndian.Uint64(payload[12:]),
	}
	n := int(binary.LittleEndian.Uint16(payload[20:]))
	if len(payload) != 22+n {
		return Header{}, fmt.Errorf("%w: header profile length mismatch", ErrCorrupt)
	}
	h.Profile = string(payload[22 : 22+n])
	return h, nil
}

// encodeRecord serializes one Record payload.
func encodeRecord(r Record) []byte {
	buf := make([]byte, 0, recordPayloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Prefix))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Centroid.Lat))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Centroid.Lon))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.RadiusKm))
	buf = append(buf, byte(r.Method))
	var flags byte
	if r.Sanitized {
		flags |= flagSanitized
	}
	return append(buf, flags)
}

// decodeRecord parses one Record payload, validating every field a
// malicious or damaged file could abuse.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) != recordPayloadLen {
		return Record{}, fmt.Errorf("%w: record payload is %d bytes, want %d",
			ErrCorrupt, len(payload), recordPayloadLen)
	}
	r := Record{
		Prefix: ipaddr.Prefix24(binary.LittleEndian.Uint32(payload[0:])),
		Centroid: geo.Point{
			Lat: math.Float64frombits(binary.LittleEndian.Uint64(payload[4:])),
			Lon: math.Float64frombits(binary.LittleEndian.Uint64(payload[12:])),
		},
		RadiusKm: math.Float64frombits(binary.LittleEndian.Uint64(payload[20:])),
	}
	m := payload[28]
	flags := payload[29]
	if uint32(r.Prefix) > 0x00FF_FFFF {
		return Record{}, fmt.Errorf("%w: prefix value %#x exceeds 24 bits", ErrCorrupt, uint32(r.Prefix))
	}
	if Method(m) >= numMethods {
		return Record{}, fmt.Errorf("%w: unknown method tag %d", ErrCorrupt, m)
	}
	if flags&^flagSanitized != 0 {
		return Record{}, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags)
	}
	if !r.Centroid.Valid() || math.IsNaN(r.RadiusKm) || math.IsInf(r.RadiusKm, 0) || r.RadiusKm < 0 {
		return Record{}, fmt.Errorf("%w: record geometry out of range", ErrCorrupt)
	}
	r.Method = Method(m)
	r.Sanitized = flags&flagSanitized != 0
	return r, nil
}

// frame serializes one frame (identical layout to checkpoint frames).
func frame(kind byte, payload []byte) []byte {
	buf := make([]byte, frameOverhead+len(payload))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(buf[:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(buf[5:], crc.Sum32())
	copy(buf[frameOverhead:], payload)
	return buf
}

// Encode serializes the dataset. Records must already be sorted by
// prefix; Compile and Decode both guarantee it.
func (d *Dataset) Encode() []byte {
	hdr := d.Hdr
	hdr.Version = Version
	out := make([]byte, 0, len(Magic)+len(d.Records)*(frameOverhead+recordPayloadLen)+64)
	out = append(out, Magic...)
	out = append(out, frame(kindHeader, encodeHeader(hdr))...)
	for _, r := range d.Records {
		out = append(out, frame(kindRecord, encodeRecord(r))...)
	}
	meters.encodes.Inc()
	return out
}

// Decode parses a dataset image. Every failure is one of the package's
// named errors; arbitrary input never panics (FuzzDatasetDecoder enforces
// both). Beyond framing, Decode validates the artifact's invariants:
// records strictly sorted by prefix (no duplicates) and well-formed
// geometry — a file violating them was not produced by Encode.
func Decode(data []byte) (*Dataset, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	d := &Dataset{}
	off := len(Magic)
	first := true
	for off < len(data) {
		rest := len(data) - off
		if rest < frameOverhead {
			return nil, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrTruncated, rest, off)
		}
		kind := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1:]))
		want := binary.LittleEndian.Uint32(data[off+5:])
		if plen > maxPayload {
			return nil, fmt.Errorf("%w: frame at offset %d claims %d-byte payload", ErrCorrupt, off, plen)
		}
		if rest < frameOverhead+plen {
			return nil, fmt.Errorf("%w: frame at offset %d runs past EOF", ErrTruncated, off)
		}
		payload := data[off+frameOverhead : off+frameOverhead+plen]
		crc := crc32.NewIEEE()
		crc.Write(data[off : off+1])
		crc.Write(payload)
		if crc.Sum32() != want {
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		off += frameOverhead + plen
		if first {
			first = false
			if kind != kindHeader {
				return nil, fmt.Errorf("%w: first record has kind %d", ErrNoHeader, kind)
			}
			hdr, err := decodeHeader(payload)
			if err != nil {
				return nil, err
			}
			if hdr.Version != Version {
				return nil, fmt.Errorf("%w: artifact version %d, decoder version %d",
					ErrBadVersion, hdr.Version, Version)
			}
			d.Hdr = hdr
			continue
		}
		switch kind {
		case kindRecord:
			r, err := decodeRecord(payload)
			if err != nil {
				return nil, err
			}
			if n := len(d.Records); n > 0 && d.Records[n-1].Prefix >= r.Prefix {
				return nil, fmt.Errorf("%w: records not strictly sorted at offset %d", ErrCorrupt, off)
			}
			d.Records = append(d.Records, r)
		case kindHeader:
			return nil, fmt.Errorf("%w: duplicate header at offset %d", ErrCorrupt, off)
		default:
			return nil, fmt.Errorf("%w: unknown record kind %d at offset %d", ErrCorrupt, kind, off)
		}
	}
	if first {
		return nil, ErrNoHeader
	}
	meters.decodes.Inc()
	return d, nil
}

// Write stores the dataset atomically: encode to a temporary file in the
// destination directory, fsync, rename. A crash leaves either the old
// artifact or the new one, never a torn hybrid — which is why the decoder
// can treat truncation as damage.
func (d *Dataset) Write(path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(d.Encode()); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Load reads and decodes an artifact file.
func Load(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data)
	if err != nil {
		meters.badLoads.Inc()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Find returns the record covering the /24 of addr (records are sorted,
// so this is a binary search), or false. Serving traffic goes through
// ipindex instead; Find is the small-scale convenience accessor.
func (d *Dataset) Find(addr ipaddr.Addr) (Record, bool) {
	p := ipaddr.Prefix24Of(addr)
	i := sort.Search(len(d.Records), func(i int) bool { return d.Records[i].Prefix >= p })
	if i < len(d.Records) && d.Records[i].Prefix == p {
		return d.Records[i], true
	}
	return Record{}, false
}

// Index builds the serving index over the dataset: one /24 entry per
// record, the entry value being the record's position in Records.
func (d *Dataset) Index(cacheSize int) *ipindex.Index {
	entries := make([]ipindex.Entry, len(d.Records))
	for i, r := range d.Records {
		entries[i] = ipindex.Entry{Prefix: ipindex.From24(r.Prefix), Value: int32(i)}
	}
	return ipindex.Build(entries, cacheSize)
}

// Options tunes Compile.
type Options struct {
	// SpeedKmPerMs is the CBG propagation-speed constant; 0 means the
	// conservative geo.TwoThirdsC the paper's replication uses.
	SpeedKmPerMs float64
	// IncludeUnsanitized adds records for the anchors §4.3 removed, with
	// Sanitized=false, MethodReported and their (untrusted) reported
	// location — the dataset then documents which prefixes are known but
	// not measurement-backed.
	IncludeUnsanitized bool
}

// Compile builds the dataset from a finished campaign: one record per
// target /24 with the CBG centroid and confidence radius over the full
// vantage-point set. The campaign's target matrix is built on demand
// (idempotent). Everything is deterministic given the campaign's seed, so
// recompiling a same-config campaign yields a bit-identical artifact —
// the golden regression test depends on that.
//
// Compile is the in-RAM compilation path and the oracle the external-merge
// compiler (CompileExternal, stream.go) is pinned against bit for bit.
func Compile(c *core.Campaign, opts Options) *Dataset {
	defer telemetry.Default().StartSpan("phase.dataset").End()
	return CompileFromSource(NewCampaignSource(c), CampaignHeader(c), opts, CampaignExtras(c, opts))
}

// CampaignHeader builds the artifact header identifying a campaign.
func CampaignHeader(c *core.Campaign) Header {
	profile := "raw"
	if p := c.FaultProfile(); p != nil {
		profile = p.Name
	}
	return Header{
		Version:    Version,
		ConfigHash: c.ConfigHash(),
		Seed:       c.W.Cfg.Seed,
		Profile:    profile,
	}
}

// CampaignExtras returns the non-measured records a campaign contributes
// beyond its targets: the anchors §4.3 removed, when Options asks for
// them. They compete with target records in dedupe exactly as they did
// when Compile appended them inline — after all targets, in removal order.
func CampaignExtras(c *core.Campaign, opts Options) []Record {
	if !opts.IncludeUnsanitized {
		return nil
	}
	extras := make([]Record, 0, len(c.RemovedAnchors))
	for _, id := range c.RemovedAnchors {
		h := c.W.Host(id)
		extras = append(extras, Record{
			Prefix:   ipaddr.Prefix24Of(h.Addr),
			Centroid: h.Reported,
			Method:   MethodReported,
		})
	}
	return extras
}

// compileRecord estimates one target from its measurements: CBG centroid
// plus confidence radius when the constraint intersection is non-empty,
// shortest-ping fallback otherwise.
//
// The confidence radius is an analytic upper bound, not a sampled one:
// any point x inside constraint circle i satisfies dist(centroid, x) <=
// dist(centroid, center_i) + radius_i, so the minimum of that quantity
// over all constraints bounds how far anything in the intersection — the
// true location included, since RTT-derived distances are upper bounds at
// a conservative speed constant — can sit from the centroid. A sampled
// maximum would be tighter but loses the coverage guarantee to grid
// resolution.
// The constraint sampling runs through geo.Sampler — bit-exact with the
// Region.Reduced → SamplePoints → Centroid chain it replaced (the golden
// digests pin this) but allocation-free with hoisted trigonometry, which
// is what makes million-target compiles tractable.
func compileRecord(ms []cbg.Measurement, speed float64) (Record, bool) {
	sm := compileSamplers.Get().(*geo.Sampler)
	defer compileSamplers.Put(sm)
	sm.Reset()
	tight := math.Inf(1)
	for _, m := range ms {
		if m.RTTMs < 0 || math.IsNaN(m.RTTMs) {
			continue
		}
		r := geo.RTTToDistanceKm(m.RTTMs, speed)
		sm.Add(geo.Circle{Center: m.VP, RadiusKm: r})
		if r < tight {
			tight = r
		}
	}
	if centroid, ok := sm.Centroid(geo.DefaultSampleRings, geo.DefaultSampleBearings); ok {
		radius := math.Inf(1)
		sm.Kept(func(c geo.Circle) {
			// Min over the surviving set; survivor order (which the sampler
			// scrambles) cannot change the value.
			if bound := geo.Distance(centroid, c.Center) + c.RadiusKm; bound < radius {
				radius = bound
			}
		})
		return Record{Centroid: centroid, RadiusKm: radius, Method: MethodCBG}, true
	}
	est, err := cbg.ShortestPing(ms)
	if err != nil {
		return Record{}, false
	}
	if math.IsInf(tight, 1) {
		tight = 0 // no responsive VP: same zero Tightest reported on an empty region
	}
	return Record{Centroid: est, RadiusKm: tight, Method: MethodShortestPing}, true
}

// compileSamplers pools per-record sampling scratch across compile
// workers; a sampler is reset before use, so pooling never influences
// results.
var compileSamplers = sync.Pool{New: func() any { return new(geo.Sampler) }}

// sortRecords sorts by prefix and resolves duplicate prefixes, preferring
// sanitized records, then smaller confidence radii. The sort is stable so
// exact ties (e.g. two removed anchors sharing a /24) resolve to the
// earliest record in input order — the same rule the external-merge
// compiler applies across spill runs, which is what keeps the two paths
// bit-identical.
func sortRecords(d *Dataset) {
	sort.SliceStable(d.Records, func(i, j int) bool { return d.Records[i].Prefix < d.Records[j].Prefix })
	out := d.Records[:0]
	for _, r := range d.Records {
		if n := len(out); n > 0 && out[n-1].Prefix == r.Prefix {
			if better(r, out[n-1]) {
				out[n-1] = r
			}
			continue
		}
		out = append(out, r)
	}
	d.Records = out
}

// better ranks duplicate-prefix records: sanitized beats unsanitized,
// then the tighter confidence radius wins.
func better(a, b Record) bool {
	if a.Sanitized != b.Sanitized {
		return a.Sanitized
	}
	return a.RadiusKm < b.RadiusKm
}

// MergeStreetLevel overlays street-level results onto compiled records:
// the estimate for the target's prefix is replaced by the street-level
// one and the method tag upgraded (MethodStreetLandmark when a landmark
// was selected, MethodStreetCBG for the tier-1 fallback). The CBG
// confidence radius is kept — the constraint region still bounds the
// target; street level refines the point inside it. Returns how many
// records were updated.
func MergeStreetLevel(d *Dataset, c *core.Campaign, results []streetlevel.Result) int {
	byPrefix := make(map[ipaddr.Prefix24]int, len(d.Records))
	for i, r := range d.Records {
		byPrefix[r.Prefix] = i
	}
	updated := 0
	for _, res := range results {
		if res.Target < 0 || res.Target >= len(c.Targets) {
			continue
		}
		i, ok := byPrefix[ipaddr.Prefix24Of(c.Targets[res.Target].Addr)]
		if !ok || !d.Records[i].Sanitized {
			continue
		}
		d.Records[i].Centroid = res.Estimate
		if res.Method == "landmark" {
			d.Records[i].Method = MethodStreetLandmark
		} else {
			d.Records[i].Method = MethodStreetCBG
		}
		updated++
	}
	return updated
}
