package dataset

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geoloc/internal/core"
	"geoloc/internal/geo"
	"geoloc/internal/ipaddr"
	"geoloc/internal/streetlevel"
	"geoloc/internal/world"
)

var (
	campOnce sync.Once
	camp     *core.Campaign
)

// tinyCampaign builds one shared tiny-scale campaign (matrices included)
// for every test in the package.
func tinyCampaign(t *testing.T) *core.Campaign {
	t.Helper()
	campOnce.Do(func() {
		camp = core.NewCampaign(world.TinyConfig())
		camp.BuildTargetMatrix()
	})
	return camp
}

func compiled(t *testing.T) *Dataset {
	t.Helper()
	return Compile(tinyCampaign(t), Options{IncludeUnsanitized: true})
}

func TestCompileShape(t *testing.T) {
	c := tinyCampaign(t)
	d := compiled(t)
	if len(d.Records) == 0 {
		t.Fatal("compiled dataset is empty")
	}
	if d.Hdr.Seed != c.W.Cfg.Seed || d.Hdr.ConfigHash != c.ConfigHash() || d.Hdr.Profile != "raw" {
		t.Fatalf("header %+v does not identify the campaign", d.Hdr)
	}
	sanitized, unsanitized := 0, 0
	for i, r := range d.Records {
		if i > 0 && d.Records[i-1].Prefix >= r.Prefix {
			t.Fatalf("records not strictly sorted at %d", i)
		}
		if r.Sanitized {
			sanitized++
			if r.Method != MethodCBG && r.Method != MethodShortestPing {
				t.Fatalf("sanitized record %s has method %s", r.Prefix, r.Method)
			}
			if r.RadiusKm <= 0 {
				t.Fatalf("sanitized record %s has no confidence radius", r.Prefix)
			}
		} else {
			unsanitized++
			if r.Method != MethodReported || r.RadiusKm != 0 {
				t.Fatalf("unsanitized record %s: method %s radius %g", r.Prefix, r.Method, r.RadiusKm)
			}
		}
		if !r.Centroid.Valid() {
			t.Fatalf("record %s has invalid centroid %v", r.Prefix, r.Centroid)
		}
	}
	// Targets can share a /24 (the allocator packs hosts per AS prefix),
	// and a removed anchor sharing a target's /24 loses to the sanitized
	// record — count distinct prefixes, not hosts.
	targetPfx := map[ipaddr.Prefix24]bool{}
	for _, target := range c.Targets {
		targetPfx[ipaddr.Prefix24Of(target.Addr)] = true
	}
	removedPfx := map[ipaddr.Prefix24]bool{}
	for _, id := range c.RemovedAnchors {
		p := ipaddr.Prefix24Of(c.W.Host(id).Addr)
		if !targetPfx[p] {
			removedPfx[p] = true
		}
	}
	if sanitized != len(targetPfx) {
		t.Fatalf("%d sanitized records, want one per distinct target /24 (%d)", sanitized, len(targetPfx))
	}
	if unsanitized != len(removedPfx) {
		t.Fatalf("%d unsanitized records, want one per distinct removed-anchor /24 (%d)", unsanitized, len(removedPfx))
	}
}

// TestConfidenceRadiusCoversTruth checks the HLOC-style contract on the
// synthetic ground truth: the true location lies within the confidence
// radius of the centroid. The analytic radius bound guarantees it
// whenever the truth satisfies every constraint, which the simulator's
// 2/3c speed bound ensures. Prefixes holding two different targets are
// skipped — a per-/24 dataset can only be right about one of them.
func TestConfidenceRadiusCoversTruth(t *testing.T) {
	c := tinyCampaign(t)
	d := Compile(c, Options{})
	perPrefix := map[ipaddr.Prefix24]int{}
	for _, target := range c.Targets {
		perPrefix[ipaddr.Prefix24Of(target.Addr)]++
	}
	covered, total := 0, 0
	for _, target := range c.Targets {
		if perPrefix[ipaddr.Prefix24Of(target.Addr)] > 1 {
			continue
		}
		r, ok := d.Find(target.Addr)
		if !ok || r.Method != MethodCBG {
			continue
		}
		total++
		if geo.Distance(r.Centroid, target.Loc) <= r.RadiusKm {
			covered++
		}
	}
	if total == 0 {
		t.Fatal("no CBG records to check")
	}
	if covered != total {
		t.Fatalf("%d of %d single-target prefixes outside their confidence radius", total-covered, total)
	}
}

func TestCompileDeterministic(t *testing.T) {
	c := tinyCampaign(t)
	a := Compile(c, Options{IncludeUnsanitized: true}).Encode()
	b := Compile(c, Options{IncludeUnsanitized: true}).Encode()
	if string(a) != string(b) {
		t.Fatal("recompiling the same campaign changed the artifact bytes")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := compiled(t)
	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Hdr != d.Hdr {
		t.Fatalf("header round-trip: %+v vs %+v", got.Hdr, d.Hdr)
	}
	if len(got.Records) != len(d.Records) {
		t.Fatalf("record count round-trip: %d vs %d", len(got.Records), len(d.Records))
	}
	for i := range got.Records {
		if got.Records[i] != d.Records[i] {
			t.Fatalf("record %d round-trip: %+v vs %+v", i, got.Records[i], d.Records[i])
		}
	}
}

func TestWriteLoad(t *testing.T) {
	d := compiled(t)
	path := filepath.Join(t.TempDir(), "tiny.geodset")
	if err := d.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Records) != len(d.Records) || got.Hdr != d.Hdr {
		t.Fatal("loaded dataset differs from written one")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temporary file left behind")
	}
}

func TestDecodeNamedErrors(t *testing.T) {
	good := compiled(t).Encode()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"bad magic", []byte("NOTADSET................"), ErrBadMagic},
		{"magic only", []byte(Magic), ErrNoHeader},
		{"torn tail", good[:len(good)-3], ErrTruncated},
		{"torn mid frame", good[:len(Magic)+4], ErrTruncated},
		{"flipped byte", flip(good, len(good)-2), ErrCorrupt},
		{"flipped header byte", flip(good, len(Magic)+frameOverhead+1), ErrCorrupt},
	}
	for _, c := range cases {
		_, err := Decode(c.data)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Decode err = %v, want %v", c.name, err, c.want)
		}
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	d := compiled(t)
	d2 := &Dataset{Hdr: d.Hdr, Records: d.Records}
	d2.Hdr.Version = Version + 1
	// Encode forces the current version, so hand-build the bad frame.
	raw := append([]byte(Magic), frame(kindHeader, encodeHeader(d2.Hdr))...)
	if _, err := Decode(raw); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsUnsortedRecords(t *testing.T) {
	d := compiled(t)
	if len(d.Records) < 2 {
		t.Skip("need two records")
	}
	raw := append([]byte(Magic), frame(kindHeader, encodeHeader(d.Hdr))...)
	raw = append(raw, frame(kindRecord, encodeRecord(d.Records[1]))...)
	raw = append(raw, frame(kindRecord, encodeRecord(d.Records[0]))...)
	if _, err := Decode(raw); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for unsorted records", err)
	}
}

func TestFindAndIndexAgree(t *testing.T) {
	d := compiled(t)
	ix := d.Index(0)
	if ix.Len() != len(d.Records) {
		t.Fatalf("index has %d prefixes, dataset %d records", ix.Len(), len(d.Records))
	}
	for i, r := range d.Records {
		addr := r.Prefix.Addr(17)
		fr, ok := d.Find(addr)
		if !ok || fr != r {
			t.Fatalf("Find(%s) = %+v, %v", addr, fr, ok)
		}
		m, ok := ix.Lookup(addr)
		if !ok || int(m.Value) != i {
			t.Fatalf("index Lookup(%s) = %+v, %v; want record %d", addr, m, ok, i)
		}
	}
	if _, ok := d.Find(ipaddr.MustParse("203.0.113.9")); ok {
		t.Fatal("Find matched an address outside every prefix")
	}
}

func TestSortRecordsDedupe(t *testing.T) {
	d := &Dataset{Records: []Record{
		{Prefix: 30, RadiusKm: 50, Method: MethodCBG, Sanitized: true},
		{Prefix: 10, RadiusKm: 5, Method: MethodReported},
		{Prefix: 10, RadiusKm: 99, Method: MethodCBG, Sanitized: true},
		{Prefix: 30, RadiusKm: 20, Method: MethodCBG, Sanitized: true},
	}}
	sortRecords(d)
	if len(d.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(d.Records))
	}
	if !d.Records[0].Sanitized || d.Records[0].RadiusKm != 99 {
		t.Fatalf("prefix 10 kept %+v, want the sanitized record", d.Records[0])
	}
	if d.Records[1].RadiusKm != 20 {
		t.Fatalf("prefix 30 kept %+v, want the tighter radius", d.Records[1])
	}
}

func TestMergeStreetLevel(t *testing.T) {
	c := tinyCampaign(t)
	d := Compile(c, Options{})
	res := []streetlevel.Result{
		{Target: 0, Estimate: geo.Point{Lat: 1.25, Lon: 2.5}, Method: "landmark"},
		{Target: 1, Estimate: geo.Point{Lat: -3, Lon: 4}, Method: "cbg"},
		{Target: 99999, Estimate: geo.Point{}, Method: "landmark"}, // out of range: ignored
	}
	if n := MergeStreetLevel(d, c, res); n != 2 {
		t.Fatalf("updated %d records, want 2", n)
	}
	r0, _ := d.Find(c.Targets[0].Addr)
	if r0.Method != MethodStreetLandmark || r0.Centroid.Lat != 1.25 {
		t.Fatalf("target 0 record %+v", r0)
	}
	if r0.RadiusKm <= 0 {
		t.Fatal("street-level merge dropped the confidence radius")
	}
	r1, _ := d.Find(c.Targets[1].Addr)
	if r1.Method != MethodStreetCBG || r1.Centroid.Lat != -3 {
		t.Fatalf("target 1 record %+v", r1)
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		MethodReported:       "reported",
		MethodShortestPing:   "shortest-ping",
		MethodCBG:            "cbg",
		MethodStreetCBG:      "street-cbg",
		MethodStreetLandmark: "street-landmark",
		Method(200):          "method-200",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Method(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestDecodeRejectsBadGeometry(t *testing.T) {
	hdr := Header{Version: Version, Seed: 1, Profile: "none"}
	bad := []Record{
		{Prefix: 1, Centroid: geo.Point{Lat: 95, Lon: 0}, Method: MethodCBG},
		{Prefix: 1, Centroid: geo.Point{Lat: 0, Lon: 0}, RadiusKm: math.NaN(), Method: MethodCBG},
		{Prefix: 1, Centroid: geo.Point{Lat: 0, Lon: 0}, RadiusKm: -1, Method: MethodCBG},
	}
	for i, r := range bad {
		raw := append([]byte(Magic), frame(kindHeader, encodeHeader(hdr))...)
		raw = append(raw, frame(kindRecord, encodeRecord(r))...)
		if _, err := Decode(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bad record %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}
