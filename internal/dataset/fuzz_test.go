package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"geoloc/internal/geo"
	"geoloc/internal/ipaddr"
)

// FuzzDatasetDecoder throws arbitrary bytes at Decode and checks its
// safety contract, mirroring internal/checkpoint's FuzzDecoder: no
// panics, no allocations driven by unvalidated length fields, and every
// failure — torn tails and bad CRCs included — is one of the package's
// named errors. When Decode succeeds, re-encoding the result must
// reproduce the input exactly: a dataset artifact has a single canonical
// byte form.
//
// Run locally with:
//
//	go test -fuzz FuzzDatasetDecoder -fuzztime 30s ./internal/dataset
func FuzzDatasetDecoder(f *testing.F) {
	// Seed corpus: a well-formed artifact, its truncations, and light
	// mutations, so the fuzzer starts at the format's edges.
	d := &Dataset{
		Hdr: Header{Version: Version, ConfigHash: 0xABCD, Seed: 7, Profile: "none"},
		Records: []Record{
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.0.1")),
				Centroid: geo.Point{Lat: 48.8, Lon: 2.3}, RadiusKm: 120, Method: MethodCBG, Sanitized: true},
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.1.1")),
				Centroid: geo.Point{Lat: -33.9, Lon: 151.2}, RadiusKm: 88.5, Method: MethodStreetLandmark, Sanitized: true},
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.2.1")),
				Centroid: geo.Point{Lat: 1.3, Lon: 103.8}, Method: MethodReported},
		},
	}
	img := d.Encode()
	f.Add(img)
	f.Add(img[:len(Magic)])
	f.Add(img[:len(Magic)+3])
	f.Add(img[:len(img)-1])
	f.Add(img[:len(img)/2])
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("GEODSET2junk"))
	mut := append([]byte(nil), img...)
	mut[len(Magic)+2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrNoHeader) {
				t.Fatalf("unnamed error: %v", err)
			}
			return
		}
		if got.Hdr.Version != Version {
			t.Fatalf("accepted version %d", got.Hdr.Version)
		}
		for i, r := range got.Records {
			if i > 0 && got.Records[i-1].Prefix >= r.Prefix {
				t.Fatalf("accepted unsorted records at %d", i)
			}
			if uint32(r.Prefix) > 0x00FF_FFFF || Method(r.Method) >= numMethods {
				t.Fatalf("accepted invalid record %+v", r)
			}
		}
		// Canonical form: decode(encode(decode(x))) is the identity and
		// encode(decode(x)) == x byte for byte.
		if !bytes.Equal(got.Encode(), data) {
			t.Fatal("accepted input is not in canonical encoded form")
		}
	})
}

// FuzzDataset2Decoder throws arbitrary bytes at the block-indexed
// reader and checks the same safety contract at both validation layers:
// NewReader2's eager checks (footer, index, header) and the lazy
// per-block checks behind All/Lookup. No panics, no unvalidated-length
// allocations, every failure a named error — torn blocks, bad CRCs and
// out-of-order keys included. When the file opens, a full scan must
// yield exactly the advertised record count in strictly ascending
// order, and every scanned record must be findable by Lookup.
//
// Run locally with:
//
//	go test -fuzz FuzzDataset2Decoder -fuzztime 30s ./internal/dataset
func FuzzDataset2Decoder(f *testing.F) {
	// Seed corpus: a two-block artifact, its truncations, and targeted
	// mutations of the regions each validation layer guards.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.geodset2")
	w, err := NewWriter2(path, Header{ConfigHash: 0xABCD, Seed: 7, Profile: "none"}, 2)
	if err != nil {
		f.Fatal(err)
	}
	for i, pt := range []geo.Point{{Lat: 48.8, Lon: 2.3}, {Lat: -33.9, Lon: 151.2}, {Lat: 1.3, Lon: 103.8}} {
		if err := w.Add(Record{Prefix: ipaddr.Prefix24(0x0A0000 + i), Centroid: pt,
			RadiusKm: float64(50 * (i + 1)), Method: MethodCBG, Sanitized: true}); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(Magic2)])
	f.Add(img[:len(img)-1])
	f.Add(img[:len(img)-footerLen])
	f.Add(img[:len(img)/2])
	f.Add([]byte{})
	f.Add([]byte(Magic2))
	f.Add([]byte("GEODSET1junk"))
	for _, off := range []int{len(Magic2) + 2, len(img) / 2, len(img) - footerLen + 3, len(img) - 4} {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x40
		f.Add(mut)
	}

	named := func(err error) bool {
		return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
			errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated) ||
			errors.Is(err, ErrNoHeader)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r2, err := NewReader2(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !named(err) {
				t.Fatalf("unnamed open error: %v", err)
			}
			return
		}
		var recs []Record
		scanErr := r2.All(func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if scanErr != nil {
			if !named(scanErr) {
				t.Fatalf("unnamed scan error: %v", scanErr)
			}
			return
		}
		if len(recs) != r2.NumRecords() {
			t.Fatalf("scan yielded %d records, footer advertised %d", len(recs), r2.NumRecords())
		}
		for i, r := range recs {
			if i > 0 && recs[i-1].Prefix >= r.Prefix {
				t.Fatalf("accepted unsorted records at %d", i)
			}
			if uint32(r.Prefix) > 0x00FF_FFFF || Method(r.Method) >= numMethods {
				t.Fatalf("accepted invalid record %+v", r)
			}
			got, ok, err := r2.Lookup(r.Prefix)
			if err != nil || !ok || got != r {
				t.Fatalf("scanned record %s not found by lookup (ok=%v err=%v)", r.Prefix, ok, err)
			}
		}
	})
}
