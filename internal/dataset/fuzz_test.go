package dataset

import (
	"bytes"
	"errors"
	"testing"

	"geoloc/internal/geo"
	"geoloc/internal/ipaddr"
)

// FuzzDatasetDecoder throws arbitrary bytes at Decode and checks its
// safety contract, mirroring internal/checkpoint's FuzzDecoder: no
// panics, no allocations driven by unvalidated length fields, and every
// failure — torn tails and bad CRCs included — is one of the package's
// named errors. When Decode succeeds, re-encoding the result must
// reproduce the input exactly: a dataset artifact has a single canonical
// byte form.
//
// Run locally with:
//
//	go test -fuzz FuzzDatasetDecoder -fuzztime 30s ./internal/dataset
func FuzzDatasetDecoder(f *testing.F) {
	// Seed corpus: a well-formed artifact, its truncations, and light
	// mutations, so the fuzzer starts at the format's edges.
	d := &Dataset{
		Hdr: Header{Version: Version, ConfigHash: 0xABCD, Seed: 7, Profile: "none"},
		Records: []Record{
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.0.1")),
				Centroid: geo.Point{Lat: 48.8, Lon: 2.3}, RadiusKm: 120, Method: MethodCBG, Sanitized: true},
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.1.1")),
				Centroid: geo.Point{Lat: -33.9, Lon: 151.2}, RadiusKm: 88.5, Method: MethodStreetLandmark, Sanitized: true},
			{Prefix: ipaddr.Prefix24Of(ipaddr.MustParse("10.0.2.1")),
				Centroid: geo.Point{Lat: 1.3, Lon: 103.8}, Method: MethodReported},
		},
	}
	img := d.Encode()
	f.Add(img)
	f.Add(img[:len(Magic)])
	f.Add(img[:len(Magic)+3])
	f.Add(img[:len(img)-1])
	f.Add(img[:len(img)/2])
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("GEODSET2junk"))
	mut := append([]byte(nil), img...)
	mut[len(Magic)+2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrNoHeader) {
				t.Fatalf("unnamed error: %v", err)
			}
			return
		}
		if got.Hdr.Version != Version {
			t.Fatalf("accepted version %d", got.Hdr.Version)
		}
		for i, r := range got.Records {
			if i > 0 && got.Records[i-1].Prefix >= r.Prefix {
				t.Fatalf("accepted unsorted records at %d", i)
			}
			if uint32(r.Prefix) > 0x00FF_FFFF || Method(r.Method) >= numMethods {
				t.Fatalf("accepted invalid record %+v", r)
			}
		}
		// Canonical form: decode(encode(decode(x))) is the identity and
		// encode(decode(x)) == x byte for byte.
		if !bytes.Equal(got.Encode(), data) {
			t.Fatal("accepted input is not in canonical encoded form")
		}
	})
}
