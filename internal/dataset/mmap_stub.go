//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// mmapSupported gates OpenMapped's zero-copy path; on platforms without
// it OpenMapped silently degrades to the positioned-read reader.
const mmapSupported = false

var errMmapUnsupported = errors.New("dataset: mmap not supported on this platform")

func mmapFile(*os.File, int64) ([]byte, error) { return nil, errMmapUnsupported }

func munmapFile([]byte) error { return nil }
