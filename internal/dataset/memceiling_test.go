package dataset

import (
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"geoloc/internal/core"
	"geoloc/internal/world"
)

var (
	memCampOnce sync.Once
	memCamp     *core.Campaign
)

// memCampaign is a slimmer world than the shared fixture: the memory
// harness measures heap, not geolocation quality, and MeasureTarget's
// cost is linear in VP count — a few dozen VPs keep the quarter-million
// target sweeps to seconds.
func memCampaign(t *testing.T) *core.Campaign {
	t.Helper()
	memCampOnce.Do(func() {
		cfg := world.TinyConfig()
		cfg.Probes = 40
		cfg.AnchorsPerContinent = map[world.Continent]int{
			world.Asia: 4, world.Africa: 1, world.Oceania: 1,
			world.NorthAmerica: 5, world.Europe: 8, world.SouthAmerica: 1,
		}
		memCamp = core.NewCampaign(cfg)
	})
	return memCamp
}

// peakHeap runs fn with a HeapAlloc sampler and returns the peak heap
// observed above the pre-run baseline. The runtime's memory limit is
// pinned to baseline+limit for the duration, so the GC is obliged to
// hold a workload whose LIVE set fits the limit under it — what this
// harness measures is therefore live-set growth, not collector
// laziness. A workload whose live set genuinely exceeds the limit blows
// straight through (the limit is soft), which is exactly how the in-RAM
// foil demonstrates the ceiling is real.
func peakHeap(t *testing.T, limit uint64, fn func()) uint64 {
	t.Helper()
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	prev := debug.SetMemoryLimit(int64(base + limit))
	defer debug.SetMemoryLimit(prev)

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				runtime.ReadMemStats(&s)
				for {
					cur := peak.Load()
					if s.HeapAlloc <= cur || peak.CompareAndSwap(cur, s.HeapAlloc) {
						break
					}
				}
			}
		}
	}()
	fn()
	// One synchronous sample so a workload shorter than the tick is
	// still observed at its end state.
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	close(stop)
	<-done
	p := peak.Load()
	if p <= base {
		return 0
	}
	return p - base
}

// TestStreamingMemoryCeiling is the regression test the tentpole is
// judged by: the external-merge compiler's peak heap is bounded by the
// window (plus merge fan-in), independent of campaign size, while the
// in-RAM path's peak necessarily scales with the record count. The
// sizes are chosen so the two regimes are separated by more than any
// GC-timing noise: the in-RAM foil allocates its record slice in one
// piece (≥ records × sizeof(Record) live at once), several times the
// streaming ceiling.
func TestStreamingMemoryCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts heap accounting")
	}
	if testing.Short() {
		t.Skip("multi-second memory harness")
	}
	c := memCampaign(t)
	const (
		window  = 4096
		smallN  = 30_000
		largeN  = 120_000
		ceiling = 4 << 20 // streaming budget: window buffers + merge readers + slack
	)

	stream := func(n int) uint64 {
		src, err := core.NewStreamCampaign(c, core.StreamSpec{Targets: n, VPsPerTarget: 8})
		if err != nil {
			t.Fatal(err)
		}
		hdr := Header{ConfigHash: src.ConfigHash(), Seed: c.W.Cfg.Seed, Profile: "stream"}
		dir := t.TempDir()
		return peakHeap(t, ceiling, func() {
			if _, err := CompileExternal(filepath.Join(dir, "a.geodset"), src, hdr, Options{}, nil,
				StreamConfig{Window: window, SpillDir: filepath.Join(dir, "spill")}); err != nil {
				t.Fatal(err)
			}
		})
	}

	peakSmall := stream(smallN)
	peakLarge := stream(largeN)
	t.Logf("streaming peak heap: %d targets → %.1f MiB, %d targets → %.1f MiB",
		smallN, mib(peakSmall), largeN, mib(peakLarge))
	if peakLarge > ceiling {
		t.Fatalf("streaming peak %.1f MiB exceeds the %.1f MiB ceiling at %d targets",
			mib(peakLarge), mib(ceiling), largeN)
	}
	// N-independence: 4× the targets may cost merge fan-in (more spill
	// readers) but not a proportional heap. Allow 2 MiB of fan-in slack;
	// a proportional regression would add ~8 MiB here.
	if peakLarge > peakSmall+(2<<20) {
		t.Fatalf("streaming peak grew with campaign size: %.1f MiB → %.1f MiB",
			mib(peakSmall), mib(peakLarge))
	}

	// The in-RAM foil: same source, same record math, no spill. Its
	// record slice alone is live in one allocation, so its peak has a
	// hard floor the streaming path stays far under.
	src, err := core.NewStreamCampaign(c, core.StreamSpec{Targets: largeN, VPsPerTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	hdr := Header{ConfigHash: src.ConfigHash(), Seed: c.W.Cfg.Seed, Profile: "stream"}
	floor := uint64(largeN) * uint64(unsafe.Sizeof(Record{}))
	var ds *Dataset
	peakRAM := peakHeap(t, 1<<30, func() {
		ds = CompileFromSource(src, hdr, Options{}, nil)
	})
	t.Logf("in-RAM peak heap: %d targets → %.1f MiB (floor %.1f MiB), %d records",
		largeN, mib(peakRAM), mib(floor), len(ds.Records))
	if peakRAM < floor {
		t.Fatalf("foil peak %.1f MiB under its own record-slice floor %.1f MiB — harness broken",
			mib(peakRAM), mib(floor))
	}
	if peakRAM < ceiling {
		t.Fatalf("foil peak %.1f MiB fits the streaming ceiling — the test separates nothing",
			mib(peakRAM))
	}
	if peakRAM < 2*peakLarge {
		t.Fatalf("in-RAM peak %.1f MiB not clearly above streaming peak %.1f MiB",
			mib(peakRAM), mib(peakLarge))
	}
}

func mib[T uint64 | int64 | int](v T) float64 { return float64(v) / (1 << 20) }
