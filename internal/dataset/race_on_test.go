//go:build race

package dataset

// raceEnabled reports whether the race detector instruments this build.
// The memory-ceiling regression test skips under it: instrumentation
// multiplies heap usage in ways that say nothing about the streaming
// compiler's own footprint.
const raceEnabled = true
