// GEODSET2: the block-indexed artifact variant (DESIGN.md §3.9). The
// flat GEODSET1 format must be decoded whole, so serving it costs RAM
// proportional to the dataset. GEODSET2 keeps the same record payloads
// and frame discipline but groups records into fixed-size sorted blocks
// with a trailing per-block key index and a fixed-size footer:
//
//	magic "GEODSET2" (8 bytes)
//	header frame      kind 0 | payloadLen u32 | crc32 u32 | header payload (Version=2)
//	block frame*      kind 2 | ...           | count u16 | count × record payload
//	index frame       kind 3 | ...           | per block: first u32 | last u32 | count u32 | off u64 | plen u32
//	footer (28 bytes) indexOff u64 | records u64 | crc32(indexOff‖records) u32 | "GDS2TAIL"
//
// A reader seeks to the footer, loads the index, and thereafter touches
// only the blocks a lookup lands in — O(blocks-touched) resident memory
// at any artifact size. Like GEODSET1 the file is written atomically
// (tmp + fsync + rename), so truncation is damage, not a crash tail.
package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"geoloc/internal/ipaddr"
)

// Magic2 identifies a block-indexed dataset artifact.
const Magic2 = "GEODSET2"

// Version2 is the GEODSET2 format version, carried in the same header
// payload layout as GEODSET1.
const Version2 = 2

// GEODSET2 frame kinds (kindHeader is shared with GEODSET1).
const (
	kindBlock byte = 2
	kindIndex byte = 3
)

// DefaultBlockSize is the records-per-block default: 256 records ≈ 7.7 KB
// per block frame, a few disk pages.
const DefaultBlockSize = 256

// maxBlockRecords bounds a block so corrupt counts cannot drive huge
// allocations; the writer enforces it, the reader rejects beyond it.
const maxBlockRecords = 4096

// maxIndexPayload bounds the index frame. 24 bytes per block covers a
// full-IPv4 artifact (2^24 /24s at minimum block size) with room over.
const maxIndexPayload = 64 << 20

// footerLen is the fixed footer: indexOff u64 | records u64 | crc32 u32 |
// tail magic (8).
const footerLen = 28

// tailMagic ends every GEODSET2 file; its absence is the fastest
// possible "not a (complete) GEODSET2" signal.
const tailMagic = "GDS2TAIL"

// indexEntryLen is the per-block index entry size.
const indexEntryLen = 4 + 4 + 4 + 8 + 4

// blockMeta is one decoded index entry.
type blockMeta struct {
	first, last ipaddr.Prefix24
	count       uint32
	off         int64
	plen        uint32
}

// Writer2 streams records into a GEODSET2 file in ascending prefix
// order. It holds one block plus the (small) index in memory, so writing
// a full-IPv4-scale artifact is O(block). The file appears atomically at
// path on Finish; Abort (or a crash) leaves only a .tmp.
type Writer2 struct {
	path, tmp string
	f         *os.File
	w         *bufio.Writer
	blockSize int
	hdr       Header
	cur       []Record
	index     []blockMeta
	off       int64
	records   uint64
	last      ipaddr.Prefix24
	finished  bool
}

// NewWriter2 starts a GEODSET2 artifact at path. blockSize <= 0 means
// DefaultBlockSize; larger than maxBlockRecords is rejected.
func NewWriter2(path string, hdr Header, blockSize int) (*Writer2, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxBlockRecords {
		return nil, fmt.Errorf("dataset: block size %d exceeds limit %d", blockSize, maxBlockRecords)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr.Version = Version2
	w := &Writer2{
		path: path, tmp: tmp, f: f, w: bufio.NewWriterSize(f, 64<<10),
		blockSize: blockSize, hdr: hdr, cur: make([]Record, 0, blockSize),
	}
	if _, err := w.w.WriteString(Magic2); err != nil {
		w.Abort()
		return nil, err
	}
	hb := frame(kindHeader, encodeHeader(hdr))
	if _, err := w.w.Write(hb); err != nil {
		w.Abort()
		return nil, err
	}
	w.off = int64(len(Magic2) + len(hb))
	return w, nil
}

// Add appends one record; prefixes must be strictly ascending.
func (w *Writer2) Add(r Record) error {
	if w.records > 0 && r.Prefix <= w.last {
		return fmt.Errorf("dataset: records out of order (%s after %s)", r.Prefix, w.last)
	}
	w.cur = append(w.cur, r)
	w.last = r.Prefix
	w.records++
	if len(w.cur) == w.blockSize {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer2) flushBlock() error {
	if len(w.cur) == 0 {
		return nil
	}
	payload := make([]byte, 0, 2+len(w.cur)*recordPayloadLen)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(w.cur)))
	for _, r := range w.cur {
		payload = append(payload, encodeRecord(r)...)
	}
	fb := frame(kindBlock, payload)
	if _, err := w.w.Write(fb); err != nil {
		return err
	}
	w.index = append(w.index, blockMeta{
		first: w.cur[0].Prefix,
		last:  w.cur[len(w.cur)-1].Prefix,
		count: uint32(len(w.cur)),
		off:   w.off,
		plen:  uint32(len(payload)),
	})
	w.off += int64(len(fb))
	w.cur = w.cur[:0]
	return nil
}

// Finish flushes the last block, writes the index and footer, fsyncs,
// and atomically renames the file into place. Returns the final size.
func (w *Writer2) Finish() (int64, error) {
	if err := w.flushBlock(); err != nil {
		w.Abort()
		return 0, err
	}
	indexOff := w.off
	payload := make([]byte, 0, len(w.index)*indexEntryLen)
	for _, b := range w.index {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(b.first))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(b.last))
		payload = binary.LittleEndian.AppendUint32(payload, b.count)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(b.off))
		payload = binary.LittleEndian.AppendUint32(payload, b.plen)
	}
	fb := frame(kindIndex, payload)
	if _, err := w.w.Write(fb); err != nil {
		w.Abort()
		return 0, err
	}
	w.off += int64(len(fb))
	footer := make([]byte, 0, footerLen)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(indexOff))
	footer = binary.LittleEndian.AppendUint64(footer, w.records)
	footer = binary.LittleEndian.AppendUint32(footer, crc32.ChecksumIEEE(footer[:16]))
	footer = append(footer, tailMagic...)
	if _, err := w.w.Write(footer); err != nil {
		w.Abort()
		return 0, err
	}
	w.off += footerLen
	if err := w.w.Flush(); err != nil {
		w.Abort()
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return 0, err
	}
	w.finished = true
	if err := os.Rename(w.tmp, w.path); err != nil {
		return 0, err
	}
	if dir, err := os.Open(filepath.Dir(w.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return w.off, nil
}

// Abort discards the partial file. Safe after Finish (no-op).
func (w *Writer2) Abort() {
	if w.finished {
		return
	}
	w.f.Close()
	os.Remove(w.tmp)
	w.finished = true
}

// NumBlocks reports how many blocks have been flushed so far.
func (w *Writer2) NumBlocks() int { return len(w.index) }

// blockCacheSize is the Reader2 decoded-block LRU capacity. 64 default
// blocks ≈ 64 × 256 records ≈ 800 KB — the reader's steady-state
// footprint no matter how large the artifact is.
const blockCacheSize = 64

// Reader2 serves lookups out of a GEODSET2 artifact. Two read paths
// share the type: the positioned-read path (Open2) reads and LRU-caches
// the block a lookup lands in, and the zero-copy path (OpenMapped)
// resolves block reads to slices of a read-only mmap of the file — no
// block copies, no cache mutex, the page cache does the caching — with
// each block's CRC and sort invariants verified once on first touch via
// a per-block atomic bitmap. Both are safe for concurrent use.
//
// Lifecycle: a reader is born with one owner reference; Close drops it.
// In-flight requests that must outlive a hot-swap pin the reader
// (TryPin/Unpin); the mapping and descriptor are released only when the
// last reference drops, so a swapped-out mapping stays valid until the
// last pinned request drains — generation-pinned munmap.
type Reader2 struct {
	r       io.ReaderAt
	closer  io.Closer
	hdr     Header
	blocks  []blockMeta
	records int

	cache *blockCache // positioned-read path only; nil when mapped

	// admitLo/admitHi bound which blocks the LRU admits (partition-keyed
	// warm caches): blocks wholly outside [admitLo, admitHi] read through
	// without caching. Defaults to the full /24 space.
	admitLo, admitHi ipaddr.Prefix24

	// data is the whole-file mapping (nil on the positioned-read path);
	// verified is the per-block CRC-verified-on-first-touch bitmap.
	data     []byte
	verified []atomic.Uint32

	// refs counts the owner reference plus every in-flight pin; closed
	// makes Close idempotent.
	refs   atomic.Int64
	closed atomic.Bool
}

// Open2 opens a GEODSET2 artifact file for block-indexed reads.
func Open2(path string) (*Reader2, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d, err := NewReader2(f, st.Size())
	if err != nil {
		f.Close()
		meters.badLoads.Inc()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	d.closer = f
	return d, nil
}

// OpenMapped opens a GEODSET2 artifact through a read-only memory map:
// footer, index, and header are validated eagerly exactly like Open2,
// but block reads resolve to slices of the mapping. On platforms (or
// filesystems) where mmap is unavailable it falls back cleanly to the
// positioned-read reader — callers can check which path they got with
// Mapped.
func OpenMapped(path string) (*Reader2, error) {
	if !mmapSupported {
		return Open2(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		// The file exists but cannot be mapped (exotic filesystem, size
		// overflow): serve it via positioned reads instead.
		f.Close()
		return Open2(path)
	}
	// The mapping survives the descriptor; release it now so a mapped
	// reader holds no fd at all.
	f.Close()
	d, err := NewReader2(bytes.NewReader(data), st.Size())
	if err != nil {
		munmapFile(data)
		meters.badLoads.Inc()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	d.data = data
	d.verified = make([]atomic.Uint32, (len(d.blocks)+31)/32)
	d.cache = nil // the page cache is the cache
	return d, nil
}

// NewReader2 builds a reader over any io.ReaderAt (the fuzz harness
// hands it a bytes.Reader). Every validation failure is one of the
// package's named errors; arbitrary input never panics.
func NewReader2(r io.ReaderAt, size int64) (*Reader2, error) {
	if size < int64(len(Magic2)) {
		return nil, ErrBadMagic
	}
	var magic [len(Magic2)]byte
	if _, err := r.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if string(magic[:]) != Magic2 {
		return nil, ErrBadMagic
	}
	if size < int64(len(Magic2))+frameOverhead+footerLen {
		return nil, fmt.Errorf("%w: %d bytes is too small for a GEODSET2 file", ErrTruncated, size)
	}
	var footer [footerLen]byte
	if _, err := r.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("%w: reading footer: %v", ErrTruncated, err)
	}
	if string(footer[20:]) != tailMagic {
		return nil, fmt.Errorf("%w: footer tail magic missing", ErrTruncated)
	}
	if crc32.ChecksumIEEE(footer[:16]) != binary.LittleEndian.Uint32(footer[16:]) {
		return nil, fmt.Errorf("%w: footer CRC mismatch", ErrCorrupt)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	records := binary.LittleEndian.Uint64(footer[8:])
	if indexOff < int64(len(Magic2))+frameOverhead || indexOff > size-footerLen-frameOverhead {
		return nil, fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, indexOff)
	}

	d := &Reader2{r: r, cache: newBlockCache(blockCacheSize), admitLo: 0, admitHi: ipaddr.Prefix24(0x00FF_FFFF)}
	d.refs.Store(1)

	// Header frame right after the magic.
	kind, payload, err := readFrameAt(r, int64(len(Magic2)), size, maxPayload)
	if err != nil {
		return nil, err
	}
	if kind != kindHeader {
		return nil, fmt.Errorf("%w: first frame has kind %d", ErrNoHeader, kind)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	if hdr.Version != Version2 {
		return nil, fmt.Errorf("%w: artifact version %d, GEODSET2 decoder version %d",
			ErrBadVersion, hdr.Version, Version2)
	}
	d.hdr = hdr

	// Index frame at the footer's offset.
	kind, payload, err = readFrameAt(r, indexOff, size-footerLen, maxIndexPayload)
	if err != nil {
		return nil, err
	}
	if kind != kindIndex {
		return nil, fmt.Errorf("%w: frame at index offset has kind %d", ErrCorrupt, kind)
	}
	if len(payload)%indexEntryLen != 0 {
		return nil, fmt.Errorf("%w: index payload length %d not a multiple of %d",
			ErrCorrupt, len(payload), indexEntryLen)
	}
	n := len(payload) / indexEntryLen
	d.blocks = make([]blockMeta, n)
	total := uint64(0)
	minOff := int64(len(Magic2)) + frameOverhead
	for i := range d.blocks {
		e := payload[i*indexEntryLen:]
		b := blockMeta{
			first: ipaddr.Prefix24(binary.LittleEndian.Uint32(e[0:])),
			last:  ipaddr.Prefix24(binary.LittleEndian.Uint32(e[4:])),
			count: binary.LittleEndian.Uint32(e[8:]),
			off:   int64(binary.LittleEndian.Uint64(e[12:])),
			plen:  binary.LittleEndian.Uint32(e[20:]),
		}
		switch {
		case b.count == 0 || b.count > maxBlockRecords:
			return nil, fmt.Errorf("%w: block %d claims %d records", ErrCorrupt, i, b.count)
		case uint32(b.first) > 0x00FF_FFFF || uint32(b.last) > 0x00FF_FFFF || b.first > b.last:
			return nil, fmt.Errorf("%w: block %d key range invalid", ErrCorrupt, i)
		case int(b.plen) != 2+int(b.count)*recordPayloadLen:
			return nil, fmt.Errorf("%w: block %d payload length %d does not match count %d",
				ErrCorrupt, i, b.plen, b.count)
		case b.off < minOff || b.off+frameOverhead+int64(b.plen) > indexOff:
			return nil, fmt.Errorf("%w: block %d offset out of range", ErrCorrupt, i)
		case i > 0 && b.first <= d.blocks[i-1].last:
			return nil, fmt.Errorf("%w: block %d keys overlap block %d", ErrCorrupt, i, i-1)
		case i > 0 && b.off < d.blocks[i-1].off+frameOverhead+int64(d.blocks[i-1].plen):
			return nil, fmt.Errorf("%w: block %d overlaps block %d on disk", ErrCorrupt, i, i-1)
		}
		d.blocks[i] = b
		total += uint64(b.count)
	}
	if total != records {
		return nil, fmt.Errorf("%w: footer says %d records, index sums to %d", ErrCorrupt, records, total)
	}
	d.records = int(records)
	meters.decodes.Inc()
	return d, nil
}

// readFrameAt reads and CRC-checks one frame at off; limit is the first
// byte the frame must not extend past.
func readFrameAt(r io.ReaderAt, off, limit int64, maxLen int) (byte, []byte, error) {
	var fh [frameOverhead]byte
	if off+frameOverhead > limit {
		return 0, nil, fmt.Errorf("%w: frame at offset %d runs past EOF", ErrTruncated, off)
	}
	if _, err := r.ReadAt(fh[:], off); err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame at offset %d: %v", ErrTruncated, off, err)
	}
	kind := fh[0]
	plen := int(binary.LittleEndian.Uint32(fh[1:]))
	want := binary.LittleEndian.Uint32(fh[5:])
	if plen > maxLen {
		return 0, nil, fmt.Errorf("%w: frame at offset %d claims %d-byte payload", ErrCorrupt, off, plen)
	}
	if off+frameOverhead+int64(plen) > limit {
		return 0, nil, fmt.Errorf("%w: frame at offset %d runs past EOF", ErrTruncated, off)
	}
	payload := make([]byte, plen)
	if _, err := r.ReadAt(payload, off+frameOverhead); err != nil {
		return 0, nil, fmt.Errorf("%w: reading frame payload at offset %d: %v", ErrTruncated, off, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(fh[:1])
	crc.Write(payload)
	if crc.Sum32() != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
	}
	return kind, payload, nil
}

// Header returns the artifact's provenance header.
func (d *Reader2) Header() Header { return d.hdr }

// NumRecords reports the artifact's record count (from the footer,
// validated against the index).
func (d *Reader2) NumRecords() int { return d.records }

// NumBlocks reports the number of blocks.
func (d *Reader2) NumBlocks() int { return len(d.blocks) }

// Range returns the first and last prefixes the block index covers
// (both zero for an empty artifact).
func (d *Reader2) Range() (lo, hi ipaddr.Prefix24) {
	if len(d.blocks) == 0 {
		return 0, 0
	}
	return d.blocks[0].first, d.blocks[len(d.blocks)-1].last
}

// Mapped reports whether this reader serves from a memory map (the
// zero-copy path) rather than positioned reads.
func (d *Reader2) Mapped() bool { return d.data != nil }

// TryPin takes a reference on the reader if it is still alive: the CAS
// loop increments refs only while they are positive, so a pin can never
// resurrect a reader whose last reference already dropped. Callers that
// lose this race must re-fetch the current artifact and retry.
func (d *Reader2) TryPin() bool {
	for {
		n := d.refs.Load()
		if n <= 0 {
			return false
		}
		if d.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Unpin drops a TryPin reference; the last reference out releases the
// mapping and descriptor.
func (d *Reader2) Unpin() { d.release() }

// Close drops the owner reference taken at open. Idempotent. The
// mapping (and file) is released only when every pinned request has
// unpinned — a swapped-out mapped reader stays valid until the last
// in-flight lookup drains.
func (d *Reader2) Close() error {
	if d.closed.CompareAndSwap(false, true) {
		d.release()
	}
	return nil
}

// release drops one reference and tears the reader down at zero.
func (d *Reader2) release() {
	if d.refs.Add(-1) != 0 {
		return
	}
	if d.data != nil {
		munmapFile(d.data)
		d.data = nil
		d.r = nil
	}
	if d.closer != nil {
		d.closer.Close()
		d.closer = nil
	}
}

// block fetches the decoded records of block i, validating the frame
// CRC, the count, and that keys are strictly ascending inside the index
// entry's [first, last] range. cacheIt controls LRU insertion — full
// scans skip it so they cannot evict a serving workload's hot blocks,
// and blocks outside the admitted key range read through uncached.
func (d *Reader2) block(i int, cacheIt bool) ([]Record, error) {
	if recs, ok := d.cache.get(i); ok {
		return recs, nil
	}
	b := d.blocks[i]
	cacheIt = cacheIt && b.last >= d.admitLo && b.first <= d.admitHi
	kind, payload, err := readFrameAt(d.r, b.off, b.off+frameOverhead+int64(b.plen), int(b.plen))
	if err != nil {
		return nil, err
	}
	if kind != kindBlock {
		return nil, fmt.Errorf("%w: block %d frame has kind %d", ErrCorrupt, i, kind)
	}
	if len(payload) != int(b.plen) || len(payload) < 2 {
		return nil, fmt.Errorf("%w: block %d payload size mismatch", ErrCorrupt, i)
	}
	count := int(binary.LittleEndian.Uint16(payload))
	if count != int(b.count) {
		return nil, fmt.Errorf("%w: block %d holds %d records, index says %d", ErrCorrupt, i, count, b.count)
	}
	recs := make([]Record, count)
	for k := 0; k < count; k++ {
		r, err := decodeRecord(payload[2+k*recordPayloadLen : 2+(k+1)*recordPayloadLen])
		if err != nil {
			return nil, err
		}
		if k > 0 && recs[k-1].Prefix >= r.Prefix {
			return nil, fmt.Errorf("%w: block %d records not strictly sorted at %d", ErrCorrupt, i, k)
		}
		recs[k] = r
	}
	if recs[0].Prefix != b.first || recs[count-1].Prefix != b.last {
		return nil, fmt.Errorf("%w: block %d key range does not match its index entry", ErrCorrupt, i)
	}
	if cacheIt {
		d.cache.put(i, recs)
	}
	return recs, nil
}

// Lookup returns the record for exactly prefix p, reading at most one
// block. On the mapped path the whole lookup is allocation-free: block
// and record binary searches run directly over the mapping.
func (d *Reader2) Lookup(p ipaddr.Prefix24) (Record, bool, error) {
	// Last block whose first key is <= p.
	i := sort.Search(len(d.blocks), func(i int) bool { return d.blocks[i].first > p }) - 1
	if i < 0 || p > d.blocks[i].last {
		return Record{}, false, nil
	}
	if d.data != nil {
		return d.lookupMapped(i, p)
	}
	recs, err := d.block(i, true)
	if err != nil {
		return Record{}, false, err
	}
	k := sort.Search(len(recs), func(k int) bool { return recs[k].Prefix >= p })
	if k < len(recs) && recs[k].Prefix == p {
		return recs[k], true, nil
	}
	return Record{}, false, nil
}

// lookupMapped answers prefix p out of block i directly from the
// mapping: fixed-size record payloads make the in-block binary search a
// pointer-arithmetic walk, and only the single matching record is
// decoded. No copies, no lock, no allocation.
func (d *Reader2) lookupMapped(i int, p ipaddr.Prefix24) (Record, bool, error) {
	payload, err := d.mappedPayload(i)
	if err != nil {
		return Record{}, false, err
	}
	n := int(d.blocks[i].count)
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		key := ipaddr.Prefix24(binary.LittleEndian.Uint32(payload[2+mid*recordPayloadLen:]))
		if key < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= n {
		return Record{}, false, nil
	}
	rp := payload[2+lo*recordPayloadLen : 2+(lo+1)*recordPayloadLen]
	if ipaddr.Prefix24(binary.LittleEndian.Uint32(rp)) != p {
		return Record{}, false, nil
	}
	r, err := decodeRecord(rp)
	if err != nil {
		return Record{}, false, err
	}
	return r, true, nil
}

// ieeeTable backs the allocation-free CRC of the first-touch verifier.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// mappedPayload returns block i's frame payload as a slice of the
// mapping, verifying the frame CRC and every record's decode and sort
// invariants once per block: the first toucher pays the full check
// (same strictness as the positioned-read path), every later reader
// sees the set bit and slices straight in. A corrupt block is therefore
// detected on first touch even via mmap, with the package's named
// errors, never a panic.
func (d *Reader2) mappedPayload(i int) ([]byte, error) {
	b := d.blocks[i]
	payload := d.data[b.off+frameOverhead : b.off+frameOverhead+int64(b.plen)]
	w := &d.verified[i>>5]
	bit := uint32(1) << (uint(i) & 31)
	if w.Load()&bit != 0 {
		return payload, nil
	}
	if err := d.verifyMappedBlock(i, payload); err != nil {
		return nil, err
	}
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return payload, nil
		}
	}
}

// verifyMappedBlock runs the full block validation the positioned-read
// path performs in block(), against the mapping.
func (d *Reader2) verifyMappedBlock(i int, payload []byte) error {
	b := d.blocks[i]
	fh := d.data[b.off : b.off+frameOverhead]
	if fh[0] != kindBlock {
		return fmt.Errorf("%w: block %d frame has kind %d", ErrCorrupt, i, fh[0])
	}
	if int(binary.LittleEndian.Uint32(fh[1:])) != len(payload) {
		return fmt.Errorf("%w: block %d payload size mismatch", ErrCorrupt, i)
	}
	crc := crc32.Update(crc32.Update(0, ieeeTable, fh[:1]), ieeeTable, payload)
	if crc != binary.LittleEndian.Uint32(fh[5:]) {
		return fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, b.off)
	}
	count := int(binary.LittleEndian.Uint16(payload))
	if count != int(b.count) {
		return fmt.Errorf("%w: block %d holds %d records, index says %d", ErrCorrupt, i, count, b.count)
	}
	var prev ipaddr.Prefix24
	for k := 0; k < count; k++ {
		r, err := decodeRecord(payload[2+k*recordPayloadLen : 2+(k+1)*recordPayloadLen])
		if err != nil {
			return err
		}
		if k > 0 && prev >= r.Prefix {
			return fmt.Errorf("%w: block %d records not strictly sorted at %d", ErrCorrupt, i, k)
		}
		prev = r.Prefix
	}
	first := ipaddr.Prefix24(binary.LittleEndian.Uint32(payload[2:]))
	last := ipaddr.Prefix24(binary.LittleEndian.Uint32(payload[2+(count-1)*recordPayloadLen:]))
	if first != b.first || last != b.last {
		return fmt.Errorf("%w: block %d key range does not match its index entry", ErrCorrupt, i)
	}
	return nil
}

// SetCacheRange confines the positioned-read LRU to blocks intersecting
// the [lo, hi] prefix range — the partition-keyed warm cache: a router
// replica that owns one slice of the space stops caching (and evicting
// warm entries for) blocks it is only asked about during failover.
// No-op on the mapped path, where the page cache needs no steering.
func (d *Reader2) SetCacheRange(lo, hi ipaddr.Prefix24) {
	d.admitLo, d.admitHi = lo, hi
}

// WarmBlocks touches every block intersecting the [lo, hi] prefix range:
// mapped readers CRC-verify and page in each block; positioned-read
// readers decode them into the LRU until it is full. It returns the
// number of blocks warmed; the first damaged block stops the warm with
// the usual named error.
func (d *Reader2) WarmBlocks(lo, hi ipaddr.Prefix24) (int, error) {
	if hi < lo {
		return 0, nil
	}
	warmed := 0
	i := sort.Search(len(d.blocks), func(i int) bool { return d.blocks[i].last >= lo })
	for ; i < len(d.blocks) && d.blocks[i].first <= hi; i++ {
		if d.data != nil {
			if _, err := d.mappedPayload(i); err != nil {
				return warmed, err
			}
		} else {
			if _, err := d.block(i, true); err != nil {
				return warmed, err
			}
		}
		warmed++
		if d.data == nil && warmed >= d.cache.capacity() {
			break // LRU full: warming further would evict what we just warmed
		}
	}
	return warmed, nil
}

// Find returns the record covering addr's /24, mirroring Dataset.Find.
func (d *Reader2) Find(addr ipaddr.Addr) (Record, bool, error) {
	return d.Lookup(ipaddr.Prefix24Of(addr))
}

// All streams every record in prefix order through fn, stopping at the
// first error fn (or a damaged block) returns. It bypasses the LRU so a
// full scan cannot evict a serving workload's hot blocks.
func (d *Reader2) All(fn func(Record) error) error {
	for i := range d.blocks {
		recs, err := d.block(i, false)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// blockCacheShards is the power-of-two way count of the block LRU.
// Keying shards by block id spreads concurrent lookups across 8
// mutexes instead of serializing them on one — the fallback path's
// answer to the contention the mapped path eliminates outright.
const blockCacheShards = 8

// blockCache is a sharded mutex-guarded LRU over decoded blocks, keyed
// by block index (shard = index mod ways). Total capacity bounds the
// reader's steady-state heap no matter the artifact size. A nil
// *blockCache (the mapped path) reads as always-miss, never-store.
type blockCache struct {
	shards [blockCacheShards]blockCacheShard
}

type blockCacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[int][]Record
	use []int // LRU order, most recent last
}

func newBlockCache(capacity int) *blockCache {
	per := capacity / blockCacheShards
	if per < 1 {
		per = 1
	}
	c := &blockCache{}
	for s := range c.shards {
		c.shards[s].cap = per
		c.shards[s].m = make(map[int][]Record, per)
	}
	return c
}

// capacity returns the total entry bound across all shards.
func (c *blockCache) capacity() int {
	if c == nil {
		return 0
	}
	total := 0
	for s := range c.shards {
		total += c.shards[s].cap
	}
	return total
}

// len returns the current entry count across all shards.
func (c *blockCache) len() int {
	if c == nil {
		return 0
	}
	total := 0
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

func (c *blockCache) get(i int) ([]Record, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[i&(blockCacheShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	recs, ok := sh.m[i]
	if ok {
		sh.touch(i)
	}
	return recs, ok
}

func (c *blockCache) put(i int, recs []Record) {
	if c == nil {
		return
	}
	sh := &c.shards[i&(blockCacheShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[i]; ok {
		sh.touch(i)
		return
	}
	if len(sh.m) >= sh.cap && len(sh.use) > 0 {
		oldest := sh.use[0]
		sh.use = sh.use[1:]
		delete(sh.m, oldest)
	}
	sh.m[i] = recs
	sh.use = append(sh.use, i)
}

// touch moves i to the most-recent end; callers hold the shard lock.
func (sh *blockCacheShard) touch(i int) {
	for k, v := range sh.use {
		if v == i {
			copy(sh.use[k:], sh.use[k+1:])
			sh.use[len(sh.use)-1] = i
			return
		}
	}
}

// Materialize decodes the whole artifact into an in-RAM Dataset — for
// client-side tools (the geobench baseline oracle) that want slice
// access and don't care about the block reader's memory bound.
func (d *Reader2) Materialize() (*Dataset, error) {
	ds := &Dataset{Hdr: d.hdr, Records: make([]Record, 0, d.records)}
	if err := d.All(func(r Record) error {
		ds.Records = append(ds.Records, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadAny loads an artifact of either format fully into memory: a
// GEODSET1 is decoded as Load does, a GEODSET2 is materialized block by
// block. Servers wanting the bounded-memory path should use Open2
// directly; this is for tools.
func LoadAny(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		meters.badLoads.Inc()
		return nil, err
	}
	var m [8]byte
	_, rerr := io.ReadFull(f, m[:])
	f.Close()
	if rerr == nil && string(m[:]) == Magic2 {
		r2, err := Open2(path)
		if err != nil {
			return nil, err
		}
		defer r2.Close()
		return r2.Materialize()
	}
	return Load(path)
}
