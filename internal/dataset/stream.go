// Streaming, bounded-memory dataset compilation (DESIGN.md §3.9).
//
// The in-RAM Compile holds every record of a campaign at once, which caps
// scale at memory rather than at a config knob. This file provides the
// external-merge alternative: targets are measured and compiled in
// fixed-size windows, each window's records are sorted and spilled as a
// checkpoint-journal "run" file, and the runs are k-way merged straight
// into the final artifact. Peak memory is proportional to the window
// size (plus one small read buffer per run), never to the target count.
//
// The spill format deliberately *is* the checkpoint journal (GEOCKPT1):
// a sealed run is header + KindRow frames (one encoded Record each) +
// one KindPhase seal carrying the window's identity and a running CRC.
// Reusing the journal buys the crash semantics for free — a run with a
// torn tail or a missing seal is simply re-measured on resume, exactly
// like an unfinished campaign phase, and a sealed run is replayed
// verbatim. Resume therefore yields a bit-identical artifact, which the
// kill/resume sweep test proves at every byte of a torn run.
package dataset

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"geoloc/internal/cbg"
	"geoloc/internal/checkpoint"
	"geoloc/internal/core"
	"geoloc/internal/geo"
	"geoloc/internal/ipaddr"
	"geoloc/internal/par"
	"geoloc/internal/rhash"
	"geoloc/internal/telemetry"
)

// Source feeds targets to the compiler one at a time, which is what
// keeps streaming compilation O(window): nothing requires the targets
// (or their measurements) to exist in memory simultaneously.
// MeasureTarget must be a pure function of t — safe for concurrent calls
// on distinct t, bit-identical on repeat — because windows are measured
// through the par pool and re-measured on resume. buf is the caller's
// scratch; implementations append into buf[:0] and return it.
//
// core.StreamCampaign implements Source for synthetic million-scale
// campaigns; CampaignSource adapts a finished matrix-backed campaign.
type Source interface {
	NumTargets() int
	MeasureTarget(t int, buf []cbg.Measurement) (ipaddr.Prefix24, []cbg.Measurement)
}

// CampaignSource adapts a finished campaign's RTT matrix to the Source
// interface. It reproduces the exact measurement view the in-RAM Compile
// used: every non-NaN vantage-point RTT for the target, in VP order.
type CampaignSource struct {
	c *core.Campaign
}

// NewCampaignSource wraps a campaign, building its target matrix on
// demand (idempotent, as in Compile).
func NewCampaignSource(c *core.Campaign) *CampaignSource {
	c.BuildTargetMatrix()
	return &CampaignSource{c: c}
}

// NumTargets implements Source.
func (s *CampaignSource) NumTargets() int { return len(s.c.Targets) }

// MeasureTarget implements Source.
func (s *CampaignSource) MeasureTarget(t int, buf []cbg.Measurement) (ipaddr.Prefix24, []cbg.Measurement) {
	m := s.c.TargetRTT
	buf = buf[:0]
	for vp := range s.c.VPs {
		rtt := float64(m.RTT[vp][t])
		if math.IsNaN(rtt) {
			continue
		}
		buf = append(buf, cbg.Measurement{VP: m.VPs[vp], RTTMs: rtt})
	}
	return ipaddr.Prefix24Of(s.c.Targets[t].Addr), buf
}

// CompileFromSource is the in-RAM compilation core: measure every target,
// compile a record per responsive one, append extras, stable-sort and
// dedupe. Compile routes through it; the memory-ceiling test uses it
// directly as the materialize-everything foil.
func CompileFromSource(src Source, hdr Header, opts Options, extra []Record) *Dataset {
	speed := opts.SpeedKmPerMs
	if speed == 0 {
		speed = geo.TwoThirdsC
	}
	n := src.NumTargets()
	d := &Dataset{Hdr: hdr}
	d.Hdr.Version = Version
	// Per-target records fan across the analysis pool into index-addressed
	// slices (par determinism contract: each worker reuses its own
	// measurement scratch, no cross-target state), then reduce in target
	// order — bit-identical at any worker count.
	recs := make([]Record, n)
	oks := make([]bool, n)
	pfx := make([]ipaddr.Prefix24, n)
	scratch := make([][]cbg.Measurement, par.Workers(n))
	par.ForWorker(n, func(w, t int) {
		p, ms := src.MeasureTarget(t, scratch[w])
		scratch[w] = ms
		pfx[t] = p
		recs[t], oks[t] = compileRecord(ms, speed)
	})
	d.Records = make([]Record, 0, n+len(extra))
	for t := range recs {
		if !oks[t] {
			continue // no responsive vantage point at all: nothing to say
		}
		rec := recs[t]
		rec.Prefix = pfx[t]
		rec.Sanitized = true
		d.Records = append(d.Records, rec)
	}
	d.Records = append(d.Records, extra...)
	sortRecords(d)
	meters.compiled.Add(int64(len(d.Records)))
	return d
}

// DefaultStreamWindow is the spill window: targets measured, compiled,
// sorted, and spilled as one run. 4096 records ≈ 200 KB resident.
const DefaultStreamWindow = 4096

// StreamConfig tunes CompileExternal.
type StreamConfig struct {
	// Window is the spill window size in targets (DefaultStreamWindow
	// when <= 0). Peak heap scales with Window, not with the target
	// count; the window size is mixed into the spill-run identity hash,
	// so resuming with a different window re-measures from scratch.
	Window int
	// SpillDir holds the run files (created if missing). Required.
	SpillDir string
	// Resume reuses sealed runs found in SpillDir from a previous
	// (killed) invocation of the same compilation. Runs that are torn,
	// unsealed, or belong to a different campaign/window are re-measured.
	Resume bool
	// KeepSpill leaves the run files in place after a successful merge
	// (for debugging); by default they are deleted.
	KeepSpill bool
	// V2 writes the block-indexed GEODSET2 format instead of GEODSET1.
	V2 bool
	// BlockSize is the GEODSET2 records-per-block (DefaultBlockSize when
	// <= 0). Ignored for GEODSET1.
	BlockSize int
	// OnWindowSpilled, when set, runs after window w's run file is sealed
	// and fsynced. Returning an error aborts the compilation with that
	// error, leaving the spill dir behind — the kill/resume tests' crash
	// injection point.
	OnWindowSpilled func(window int) error
}

// StreamStats reports what a streaming compilation did.
type StreamStats struct {
	Targets       int   // targets measured or replayed
	Records       int   // records in the final artifact
	Windows       int   // spill windows (excluding the extras run)
	WindowsReused int   // sealed runs replayed from a previous invocation
	SpillBytes    int64 // total size of the run files merged
	ArtifactBytes int64 // final artifact size on disk
	Blocks        int   // GEODSET2 blocks (0 for GEODSET1)
}

// Spill-run constants. A run is a checkpoint journal whose rows are
// encoded Records and whose final record is a KindPhase seal.
const (
	// spillSalt namespaces the spill-run identity hash.
	spillSalt uint64 = 0x5C12_0009
	// extrasWindow is the seal window index of the extras run.
	extrasWindow uint32 = 0xFFFF_FFFF
	// sealPayloadLen: window u32 | firstTarget u32 | count u32 | crc u32.
	sealPayloadLen = 16
)

// spillHeader derives the journal header for this compilation's runs:
// the artifact identity plus the window size, so a resumed run can never
// be replayed into a differently-windowed (and thus differently-batched)
// compilation.
func spillHeader(hdr Header, window int) checkpoint.Header {
	return checkpoint.Header{
		ConfigHash: rhash.Hash(spillSalt, hdr.ConfigHash, hdr.Seed, uint64(window)),
		Seed:       hdr.Seed,
		Profile:    hdr.Profile,
	}
}

// runPath names window w's spill file; the extras run uses "extra".
func runPath(dir string, w int) string {
	return filepath.Join(dir, fmt.Sprintf("run-%05d.ckpt", w))
}

func extrasPath(dir string) string { return filepath.Join(dir, "run-extra.ckpt") }

// encodeSeal builds the KindPhase seal payload for a run.
func encodeSeal(window, first uint32, count int, crc uint32) []byte {
	buf := make([]byte, 0, sealPayloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, window)
	buf = binary.LittleEndian.AppendUint32(buf, first)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// writeRun spills one sorted window of records as a sealed journal.
func writeRun(path string, hdr checkpoint.Header, window, first uint32, recs []Record) error {
	j, err := checkpoint.Create(path, hdr)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	for _, r := range recs {
		payload := encodeRecord(r)
		crc.Write(payload)
		if err := j.Append(checkpoint.KindRow, payload); err != nil {
			j.Close()
			return err
		}
	}
	if err := j.Append(checkpoint.KindPhase, encodeSeal(window, first, len(recs), crc.Sum32())); err != nil {
		j.Close()
		return err
	}
	return j.Close() // Close syncs: the seal is durable before we move on
}

// validRun checks whether a spill file is a complete sealed run for
// window w of this compilation: matching journal header, every row frame
// intact, and a trailing seal whose window/first/count/CRC all match
// what a fresh spill would have written. Anything less — torn tail,
// missing seal, foreign header — means "re-measure this window".
func validRun(path string, want checkpoint.Header, window, first uint32) bool {
	r, err := checkpoint.OpenReader(path)
	if err != nil {
		return false
	}
	defer r.Close()
	if err := checkpoint.Validate(r.Header(), want); err != nil {
		return false
	}
	crc := crc32.NewIEEE()
	count := 0
	sealed := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return sealed
		}
		if err != nil {
			return false
		}
		if sealed {
			return false // trailing garbage after the seal
		}
		switch rec.Kind {
		case checkpoint.KindRow:
			if len(rec.Payload) != recordPayloadLen {
				return false
			}
			crc.Write(rec.Payload)
			count++
		case checkpoint.KindPhase:
			if len(rec.Payload) != sealPayloadLen {
				return false
			}
			if binary.LittleEndian.Uint32(rec.Payload[0:]) != window ||
				binary.LittleEndian.Uint32(rec.Payload[4:]) != first ||
				binary.LittleEndian.Uint32(rec.Payload[8:]) != uint32(count) ||
				binary.LittleEndian.Uint32(rec.Payload[12:]) != crc.Sum32() {
				return false
			}
			sealed = true
		default:
			return false
		}
	}
}

// runReader streams decoded records out of one sealed run during the
// merge. Validation already happened (a fresh run was just written by
// us; a reused one passed validRun), so any error here is fatal.
type runReader struct {
	r    *checkpoint.Reader
	idx  int // run index = merge tie-break priority
	head Record
	done bool
}

func (rr *runReader) advance() error {
	for {
		rec, err := rr.r.Next()
		if err == io.EOF {
			rr.done = true
			return nil
		}
		if err != nil {
			return err
		}
		switch rec.Kind {
		case checkpoint.KindRow:
			r, err := decodeRecord(rec.Payload)
			if err != nil {
				return err
			}
			rr.head = r
			return nil
		case checkpoint.KindPhase:
			rr.done = true
			return nil
		default:
			return fmt.Errorf("dataset: unexpected kind %d in spill run", rec.Kind)
		}
	}
}

// mergeHeap orders run heads by (prefix, run index). Ordering equal
// prefixes by run index — and runs being windows in target order, with
// the extras run last — reproduces exactly the stable input order the
// in-RAM sortRecords sees, so the duplicate fold below is bit-identical
// to it.
type mergeHeap []*runReader

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].head.Prefix != h[j].head.Prefix {
		return h[i].head.Prefix < h[j].head.Prefix
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*runReader)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// artifactWriter abstracts the two output formats for the merge.
type artifactWriter interface {
	add(Record) error
	finish() (bytes int64, blocks int, err error)
	abort()
}

// CompileExternal is the bounded-memory equivalent of Compile: it
// measures src in windows, spills each window as a sorted run, and
// k-way merges the runs into the artifact at path — GEODSET1 bytes
// identical to CompileFromSource(...).Write(path), or GEODSET2 when
// cfg.V2 is set. Peak heap is O(Window + runs·8KB) regardless of
// src.NumTargets(); the memory-ceiling test enforces it.
func CompileExternal(path string, src Source, hdr Header, opts Options, extra []Record, cfg StreamConfig) (StreamStats, error) {
	defer telemetry.Default().StartSpan("phase.dataset_external").End()
	var stats StreamStats
	if cfg.SpillDir == "" {
		return stats, errors.New("dataset: CompileExternal needs a spill dir")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultStreamWindow
	}
	if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return stats, err
	}
	speed := opts.SpeedKmPerMs
	if speed == 0 {
		speed = geo.TwoThirdsC
	}
	hdr.Version = Version
	shdr := spillHeader(hdr, cfg.Window)

	n := src.NumTargets()
	windows := (n + cfg.Window - 1) / cfg.Window
	stats.Targets = n
	stats.Windows = windows

	// Phase 1: spill. Window buffers and per-worker scratch are allocated
	// once and reused across windows — this loop is the whole point of
	// the file: nothing here grows with n.
	recs := make([]Record, cfg.Window)
	oks := make([]bool, cfg.Window)
	pfx := make([]ipaddr.Prefix24, cfg.Window)
	sorted := make([]Record, 0, cfg.Window)
	scratch := make([][]cbg.Measurement, par.Workers(cfg.Window))
	for w := 0; w < windows; w++ {
		lo := w * cfg.Window
		hi := lo + cfg.Window
		if hi > n {
			hi = n
		}
		rp := runPath(cfg.SpillDir, w)
		if cfg.Resume && validRun(rp, shdr, uint32(w), uint32(lo)) {
			stats.WindowsReused++
			continue
		}
		par.ForWorker(hi-lo, func(wk, i int) {
			t := lo + i
			p, ms := src.MeasureTarget(t, scratch[wk])
			scratch[wk] = ms
			pfx[i] = p
			recs[i], oks[i] = compileRecord(ms, speed)
		})
		sorted = sorted[:0]
		for i := 0; i < hi-lo; i++ {
			if !oks[i] {
				continue
			}
			rec := recs[i]
			rec.Prefix = pfx[i]
			rec.Sanitized = true
			sorted = append(sorted, rec)
		}
		// Stable by prefix: same-prefix targets keep target order, as the
		// in-RAM path's stable global sort would have them.
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Prefix < sorted[j].Prefix })
		if err := writeRun(rp, shdr, uint32(w), uint32(lo), sorted); err != nil {
			return stats, err
		}
		if cfg.OnWindowSpilled != nil {
			if err := cfg.OnWindowSpilled(w); err != nil {
				return stats, err
			}
		}
	}
	// Extras ride in a final run so they sort after every target record
	// with the same prefix, matching the in-RAM append order.
	runPaths := make([]string, 0, windows+1)
	for w := 0; w < windows; w++ {
		runPaths = append(runPaths, runPath(cfg.SpillDir, w))
	}
	if len(extra) > 0 {
		ex := make([]Record, len(extra))
		copy(ex, extra)
		sort.SliceStable(ex, func(i, j int) bool { return ex[i].Prefix < ex[j].Prefix })
		p := extrasPath(cfg.SpillDir)
		if !(cfg.Resume && validRun(p, shdr, extrasWindow, uint32(n))) {
			if err := writeRun(p, shdr, extrasWindow, uint32(n), ex); err != nil {
				return stats, err
			}
		}
		runPaths = append(runPaths, p)
	}

	// Phase 2: k-way merge into the artifact.
	records, bytes, blocks, err := mergeRuns(path, hdr, runPaths, cfg)
	if err != nil {
		return stats, err
	}
	stats.Records = records
	stats.ArtifactBytes = bytes
	stats.Blocks = blocks
	for _, p := range runPaths {
		if st, err := os.Stat(p); err == nil {
			stats.SpillBytes += st.Size()
		}
	}
	if !cfg.KeepSpill {
		for _, p := range runPaths {
			os.Remove(p)
		}
	}
	meters.compiled.Add(int64(records))
	return stats, nil
}

// mergeRuns streams every run through a merge heap into the artifact
// writer, folding duplicate prefixes with the same better() rule — and
// the same encounter order — as the in-RAM sortRecords.
func mergeRuns(path string, hdr Header, runPaths []string, cfg StreamConfig) (records int, bytes int64, blocks int, err error) {
	var w artifactWriter
	if cfg.V2 {
		w, err = newWriter2(path, hdr, cfg.BlockSize)
	} else {
		w, err = newWriter1(path, hdr)
	}
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		if err != nil {
			w.abort()
		}
	}()

	h := make(mergeHeap, 0, len(runPaths))
	defer func() {
		for _, rr := range h {
			rr.r.Close()
		}
	}()
	for i, p := range runPaths {
		rr := &runReader{idx: i}
		rr.r, err = checkpoint.OpenReader(p)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("dataset: reopening spill run: %w", err)
		}
		if err = rr.advance(); err != nil {
			return 0, 0, 0, err
		}
		if rr.done {
			rr.r.Close()
			continue
		}
		h = append(h, rr)
	}
	heap.Init(&h)

	var best Record
	have := false
	for h.Len() > 0 {
		rr := h[0]
		r := rr.head
		if err = rr.advance(); err != nil {
			return 0, 0, 0, err
		}
		if rr.done {
			rr.r.Close()
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		switch {
		case !have:
			best, have = r, true
		case r.Prefix == best.Prefix:
			if better(r, best) {
				best = r
			}
		default:
			if err = w.add(best); err != nil {
				return 0, 0, 0, err
			}
			records++
			best = r
		}
	}
	if have {
		if err = w.add(best); err != nil {
			return 0, 0, 0, err
		}
		records++
	}
	bytes, blocks, err = w.finish()
	if err != nil {
		return 0, 0, 0, err
	}
	return records, bytes, blocks, nil
}

// writer1 streams a GEODSET1 artifact: exactly the bytes
// Dataset.Encode would produce, written through a bufio.Writer to a
// temp file and renamed into place — so the external-merge path's
// GEODSET1 output is bit-identical to the in-RAM one by construction
// (the property test verifies it anyway).
type writer1 struct {
	path, tmp string
	f         *os.File
	w         *bufio.Writer
	size      int64
	finished  bool
}

func newWriter1(path string, hdr Header) (*writer1, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr.Version = Version
	w := &writer1{path: path, tmp: tmp, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	if _, err := w.w.WriteString(Magic); err != nil {
		w.abort()
		return nil, err
	}
	hb := frame(kindHeader, encodeHeader(hdr))
	if _, err := w.w.Write(hb); err != nil {
		w.abort()
		return nil, err
	}
	w.size = int64(len(Magic) + len(hb))
	return w, nil
}

func (w *writer1) add(r Record) error {
	fb := frame(kindRecord, encodeRecord(r))
	_, err := w.w.Write(fb)
	w.size += int64(len(fb))
	return err
}

func (w *writer1) finish() (int64, int, error) {
	if err := w.w.Flush(); err != nil {
		w.abort()
		return 0, 0, err
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return 0, 0, err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return 0, 0, err
	}
	w.finished = true
	if err := os.Rename(w.tmp, w.path); err != nil {
		return 0, 0, err
	}
	if dir, err := os.Open(filepath.Dir(w.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	meters.encodes.Inc()
	return w.size, 0, nil
}

func (w *writer1) abort() {
	if w.finished {
		return
	}
	w.f.Close()
	os.Remove(w.tmp)
	w.finished = true
}

// writer2 adapts Writer2 to the merge's artifactWriter seam.
type writer2 struct{ w *Writer2 }

func newWriter2(path string, hdr Header, blockSize int) (*writer2, error) {
	w, err := NewWriter2(path, hdr, blockSize)
	if err != nil {
		return nil, err
	}
	return &writer2{w: w}, nil
}

func (w *writer2) add(r Record) error { return w.w.Add(r) }

func (w *writer2) finish() (int64, int, error) {
	size, err := w.w.Finish()
	if err != nil {
		return 0, 0, err
	}
	return size, w.w.NumBlocks(), nil
}

func (w *writer2) abort() { w.w.Abort() }
