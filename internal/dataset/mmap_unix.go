//go:build unix

package dataset

import (
	"os"
	"syscall"
)

// mmapSupported gates OpenMapped's zero-copy path; on platforms without
// it OpenMapped silently degrades to the positioned-read reader.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. The mapping
// outlives the descriptor, so callers may close f immediately after.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error { return syscall.Munmap(data) }
