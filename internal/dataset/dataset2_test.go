package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"geoloc/internal/ipaddr"
)

// writeV2 serializes the compiled fixture through Writer2 and returns
// the artifact path.
func writeV2(t *testing.T, ds *Dataset, blockSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.geodset2")
	w, err := NewWriter2(path, ds.Hdr, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if err := w.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDataset2RoundTrip: every record written through Writer2 comes
// back through the block reader — scan order, lookup hits, and header
// provenance all matching the in-RAM GEODSET1 fixture.
func TestDataset2RoundTrip(t *testing.T) {
	ds := compiled(t)
	for _, blockSize := range []int{1, 3, 16, len(ds.Records), len(ds.Records) + 7} {
		t.Run(fmt.Sprintf("block=%d", blockSize), func(t *testing.T) {
			r2, err := Open2(writeV2(t, ds, blockSize))
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if r2.NumRecords() != len(ds.Records) {
				t.Fatalf("%d records, want %d", r2.NumRecords(), len(ds.Records))
			}
			wantBlocks := (len(ds.Records) + blockSize - 1) / blockSize
			if r2.NumBlocks() != wantBlocks {
				t.Fatalf("%d blocks, want %d", r2.NumBlocks(), wantBlocks)
			}
			hdr := r2.Header()
			if hdr.Version != Version2 || hdr.ConfigHash != ds.Hdr.ConfigHash ||
				hdr.Seed != ds.Hdr.Seed || hdr.Profile != ds.Hdr.Profile {
				t.Fatalf("header %+v does not carry fixture provenance %+v", hdr, ds.Hdr)
			}
			i := 0
			if err := r2.All(func(r Record) error {
				if r != ds.Records[i] {
					return fmt.Errorf("record %d: %+v want %+v", i, r, ds.Records[i])
				}
				i++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if i != len(ds.Records) {
				t.Fatalf("scan stopped at %d of %d", i, len(ds.Records))
			}
			for _, want := range ds.Records {
				got, ok, err := r2.Lookup(want.Prefix)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || got != want {
					t.Fatalf("lookup %s: ok=%v got %+v want %+v", want.Prefix, ok, got, want)
				}
			}
		})
	}
}

// TestDataset2LookupOracle compares every block-index lookup against a
// linear scan of the record slice — present prefixes, absent neighbours,
// and the extremes of the key space.
func TestDataset2LookupOracle(t *testing.T) {
	ds := compiled(t)
	r2, err := Open2(writeV2(t, ds, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	linear := func(p ipaddr.Prefix24) (Record, bool) {
		for _, r := range ds.Records {
			if r.Prefix == p {
				return r, true
			}
		}
		return Record{}, false
	}
	probes := []ipaddr.Prefix24{0, 1, 1 << 23, 0xFFFFFF}
	for _, r := range ds.Records {
		probes = append(probes, r.Prefix)
		if r.Prefix > 0 {
			probes = append(probes, r.Prefix-1)
		}
		if r.Prefix < 0xFFFFFF {
			probes = append(probes, r.Prefix+1)
		}
	}
	for _, p := range probes {
		wantR, wantOK := linear(p)
		gotR, gotOK, err := r2.Lookup(p)
		if err != nil {
			t.Fatalf("lookup %s: %v", p, err)
		}
		if gotOK != wantOK || gotR != wantR {
			t.Fatalf("lookup %s: got (%+v, %v), linear scan says (%+v, %v)",
				p, gotR, gotOK, wantR, wantOK)
		}
	}
}

// patchFrameCRC recomputes the CRC of the frame starting at off so a
// deliberate payload tamper isn't masked by the frame checksum — the
// point is to hit the reader's structural validation, not its CRC.
func patchFrameCRC(img []byte, off int) {
	plen := int(binary.LittleEndian.Uint32(img[off+1:]))
	crc := crc32.NewIEEE()
	crc.Write(img[off : off+1])
	crc.Write(img[off+frameOverhead : off+frameOverhead+plen])
	binary.LittleEndian.PutUint32(img[off+5:], crc.Sum32())
}

// openBytes runs NewReader2 over an in-memory image.
func openBytes(img []byte) (*Reader2, error) {
	return NewReader2(bytes.NewReader(img), int64(len(img)))
}

// TestDataset2ErrorTaxonomy: every way a GEODSET2 file can be damaged
// maps to a named error, and damage the open-time validation cannot see
// (inside a block) surfaces at read time — never as a silent wrong
// answer.
func TestDataset2ErrorTaxonomy(t *testing.T) {
	ds := compiled(t)
	path := writeV2(t, ds, 4)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] ^= 0x01
		if _, err := openBytes(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})

	t.Run("truncation-sweep", func(t *testing.T) {
		// A cut anywhere must be caught at open (the footer is the last
		// thing written, so any truncation destroys it) and must map to a
		// named error.
		for cut := 0; cut < len(img); cut++ {
			_, err := openBytes(img[:cut])
			if err == nil {
				t.Fatalf("cut %d: truncated file opened cleanly", cut)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, ErrBadMagic) {
				t.Fatalf("cut %d: unnamed error %v", cut, err)
			}
		}
	})

	t.Run("footer-crc", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)-footerLen] ^= 0x01 // indexOff byte; footer CRC now stale
		if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(Magic2)+frameOverhead] = 3 // header payload version u32, low byte
		patchFrameCRC(bad, len(Magic2))
		if _, err := openBytes(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("got %v, want ErrBadVersion", err)
		}
	})

	t.Run("block-crc", func(t *testing.T) {
		// Flip a record byte inside the first block without fixing the
		// frame CRC: open succeeds (blocks are validated lazily), the read
		// fails with ErrCorrupt.
		hdrPlen := int(binary.LittleEndian.Uint32(img[len(Magic2)+1:]))
		blockOff := len(Magic2) + frameOverhead + hdrPlen
		bad := append([]byte(nil), img...)
		bad[blockOff+frameOverhead+2+8] ^= 0x40 // a centroid byte of record 0
		r2, err := openBytes(bad)
		if err != nil {
			t.Fatalf("open rejected lazy-validated damage: %v", err)
		}
		if err := r2.All(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan over torn block: got %v, want ErrCorrupt", err)
		}
		if _, _, err := r2.Lookup(ds.Records[0].Prefix); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("lookup into torn block: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("out-of-order-block", func(t *testing.T) {
		// Swap the first two records inside block 0 and re-seal the frame
		// CRC: the checksum passes, the ordering invariant must not.
		hdrPlen := int(binary.LittleEndian.Uint32(img[len(Magic2)+1:]))
		blockOff := len(Magic2) + frameOverhead + hdrPlen
		bad := append([]byte(nil), img...)
		r0 := blockOff + frameOverhead + 2
		tmpRec := make([]byte, recordPayloadLen)
		copy(tmpRec, bad[r0:r0+recordPayloadLen])
		copy(bad[r0:r0+recordPayloadLen], bad[r0+recordPayloadLen:r0+2*recordPayloadLen])
		copy(bad[r0+recordPayloadLen:r0+2*recordPayloadLen], tmpRec)
		patchFrameCRC(bad, blockOff)
		r2, err := openBytes(bad)
		if err != nil {
			// The index carries per-block first keys, so open-time
			// validation may already spot the mismatch; that's fine as long
			// as it's named.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open: got %v, want ErrCorrupt", err)
			}
			return
		}
		if err := r2.All(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan over reordered block: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("writer-rejects-disorder", func(t *testing.T) {
		w, err := NewWriter2(filepath.Join(t.TempDir(), "x.geodset2"), ds.Hdr, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Abort()
		if err := w.Add(Record{Prefix: 10, Sanitized: true}); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(Record{Prefix: 10, Sanitized: true}); err == nil {
			t.Fatal("duplicate prefix accepted")
		}
		if err := w.Add(Record{Prefix: 9, Sanitized: true}); err == nil {
			t.Fatal("descending prefix accepted")
		}
	})
}

// TestDataset2CacheBounded: a full scan plus scattered lookups never
// grows the decoded-block cache past its capacity — the property that
// keeps Reader2's resident memory O(1) in artifact size.
func TestDataset2CacheBounded(t *testing.T) {
	ds := compiled(t)
	r2, err := Open2(writeV2(t, ds, 1)) // one record per block = max block count
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.All(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if _, _, err := r2.Lookup(r.Prefix); err != nil {
			t.Fatal(err)
		}
	}
	if n, cap := r2.cache.len(), r2.cache.capacity(); n > cap {
		t.Fatalf("cache holds %d blocks, cap is %d", n, cap)
	}
}

// TestLoadAny covers the format-sniffing loader used by client-side
// tools: both artifact generations load into the same in-RAM view.
func TestLoadAny(t *testing.T) {
	ds := compiled(t)
	dir := t.TempDir()

	v1 := filepath.Join(dir, "v1.bin")
	if err := ds.Write(v1); err != nil {
		t.Fatal(err)
	}
	v2 := writeV2(t, ds, 8)

	for name, path := range map[string]string{"v1": v1, "v2": v2} {
		got, err := LoadAny(path)
		if err != nil {
			t.Fatalf("LoadAny(%s): %v", name, err)
		}
		if len(got.Records) != len(ds.Records) {
			t.Fatalf("LoadAny(%s): %d records, want %d", name, len(got.Records), len(ds.Records))
		}
		for i := range got.Records {
			if got.Records[i] != ds.Records[i] {
				t.Fatalf("LoadAny(%s): record %d mismatch", name, i)
			}
		}
		if got.Hdr.ConfigHash != ds.Hdr.ConfigHash || got.Hdr.Seed != ds.Hdr.Seed {
			t.Fatalf("LoadAny(%s): header provenance mismatch", name)
		}
	}

	if _, err := LoadAny(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("LoadAny on missing file succeeded")
	}
}
