package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"geoloc/internal/core"
)

// streamSource builds the synthetic stream fixture the spill tests use:
// cheap enough for truncation sweeps, and — unlike the campaign source —
// needing no matrices.
func streamSource(t *testing.T, targets, k int) *core.StreamCampaign {
	t.Helper()
	s, err := core.NewStreamCampaign(tinyCampaign(t), core.StreamSpec{Targets: targets, VPsPerTarget: k})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func streamHeader(s *core.StreamCampaign) Header {
	return Header{ConfigHash: s.ConfigHash(), Seed: s.C.W.Cfg.Seed, Profile: "stream"}
}

// TestCompileExternalBitIdentical is the tentpole property test: the
// external-merge compiler's GEODSET1 output must match the in-RAM
// oracle byte for byte — across window sizes (1 = every target its own
// run, 7 = windows that straddle /24 duplicates unevenly, 64, N = one
// run) and GOMAXPROCS (the par determinism-digest pattern), with and
// without the unsanitized extras that exercise cross-run dedupe.
func TestCompileExternalBitIdentical(t *testing.T) {
	c := tinyCampaign(t)
	src := NewCampaignSource(c)
	hdr := CampaignHeader(c)
	n := len(c.Targets)
	for _, unsan := range []bool{false, true} {
		opts := Options{IncludeUnsanitized: unsan}
		oracle := Compile(c, opts)
		oraclePath := filepath.Join(t.TempDir(), "oracle.geodset")
		if err := oracle.Write(oraclePath); err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(oraclePath)
		if err != nil {
			t.Fatal(err)
		}
		extra := CampaignExtras(c, opts)
		for _, window := range []int{1, 7, 64, n} {
			for _, procs := range []int{1, 4} {
				name := fmt.Sprintf("unsan=%v/window=%d/procs=%d", unsan, window, procs)
				t.Run(name, func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					dir := t.TempDir()
					out := filepath.Join(dir, "ext.geodset")
					stats, err := CompileExternal(out, src, hdr, opts, extra, StreamConfig{
						Window:   window,
						SpillDir: filepath.Join(dir, "spill"),
					})
					if err != nil {
						t.Fatal(err)
					}
					got, err := os.ReadFile(out)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("external output differs from oracle (%d vs %d bytes, %d records)",
							len(got), len(want), stats.Records)
					}
					if stats.Records != len(oracle.Records) {
						t.Fatalf("stats say %d records, oracle has %d", stats.Records, len(oracle.Records))
					}
					wantWindows := (n + window - 1) / window
					if stats.Windows != wantWindows {
						t.Fatalf("stats say %d windows, want %d", stats.Windows, wantWindows)
					}
				})
			}
		}
	}
}

// TestCompileExternalV2MatchesOracle checks the GEODSET2 leg: same
// records, same order, same provenance as the in-RAM oracle, read back
// through the block-indexed reader.
func TestCompileExternalV2MatchesOracle(t *testing.T) {
	c := tinyCampaign(t)
	opts := Options{IncludeUnsanitized: true}
	oracle := Compile(c, opts)
	dir := t.TempDir()
	out := filepath.Join(dir, "ext.geodset2")
	stats, err := CompileExternal(out, NewCampaignSource(c), CampaignHeader(c), opts,
		CampaignExtras(c, opts), StreamConfig{
			Window:    48,
			SpillDir:  filepath.Join(dir, "spill"),
			V2:        true,
			BlockSize: 32,
		})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Open2(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	wantHdr := oracle.Hdr
	wantHdr.Version = Version2 // the only field the format rewrites
	if r2.Header() != wantHdr {
		t.Fatalf("header %+v, want %+v", r2.Header(), wantHdr)
	}
	if r2.NumRecords() != len(oracle.Records) {
		t.Fatalf("%d records, oracle has %d", r2.NumRecords(), len(oracle.Records))
	}
	if stats.Blocks != r2.NumBlocks() || stats.Blocks != (len(oracle.Records)+31)/32 {
		t.Fatalf("stats report %d blocks, reader %d", stats.Blocks, r2.NumBlocks())
	}
	i := 0
	if err := r2.All(func(r Record) error {
		if r != oracle.Records[i] {
			return fmt.Errorf("record %d: got %+v want %+v", i, r, oracle.Records[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(oracle.Records) {
		t.Fatalf("scan yielded %d records, oracle has %d", i, len(oracle.Records))
	}
}

var errInjectedKill = errors.New("injected kill")

// externalGolden runs an uninterrupted streaming compile and returns
// the artifact bytes.
func externalGolden(t *testing.T, src Source, hdr Header, window int) []byte {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "golden.geodset")
	if _, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
		Window:   window,
		SpillDir: filepath.Join(dir, "spill"),
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCompileExternalKillResumeWindows kills the compilation at every
// window boundary (the OnWindowSpilled hook is the crash injection
// point: the run file is sealed and fsynced, the process "dies" before
// the next window) and resumes; the final artifact must be
// bit-identical and the sealed runs must be reused, not re-measured.
func TestCompileExternalKillResumeWindows(t *testing.T) {
	const targets, window = 96, 16
	src := streamSource(t, targets, 6)
	hdr := streamHeader(src)
	want := externalGolden(t, src, hdr, window)
	windows := (targets + window - 1) / window
	for kill := 0; kill < windows-1; kill++ {
		t.Run(fmt.Sprintf("kill-after-window-%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			out := filepath.Join(dir, "a.geodset")
			spill := filepath.Join(dir, "spill")
			_, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
				Window:   window,
				SpillDir: spill,
				OnWindowSpilled: func(w int) error {
					if w == kill {
						return errInjectedKill
					}
					return nil
				},
			})
			if !errors.Is(err, errInjectedKill) {
				t.Fatalf("expected injected kill, got %v", err)
			}
			if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("artifact exists after crash: %v", err)
			}
			stats, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
				Window:   window,
				SpillDir: spill,
				Resume:   true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.WindowsReused != kill+1 {
				t.Fatalf("resume reused %d windows, want %d", stats.WindowsReused, kill+1)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("resumed artifact differs from uninterrupted run")
			}
		})
	}
}

// TestCompileExternalKillResumeEveryByte is the mid-spill sweep: crash
// after window 2, then truncate the last run file at EVERY byte length
// (simulating a kill mid-write of the spill itself, torn tail
// included), resume, and require the artifact bit-identical each time.
// This reuses the journal's kill-at-any-byte property (DESIGN.md §3.3)
// at the spill layer: a torn or unsealed run is re-measured, a sealed
// one replayed.
func TestCompileExternalKillResumeEveryByte(t *testing.T) {
	const targets, window, killAfter = 64, 8, 2
	src := streamSource(t, targets, 6)
	hdr := streamHeader(src)
	want := externalGolden(t, src, hdr, window)

	// One crashed compile provides the spill-dir template.
	tmplDir := t.TempDir()
	tmpl := filepath.Join(tmplDir, "spill")
	_, err := CompileExternal(filepath.Join(tmplDir, "a.geodset"), src, hdr, Options{}, nil, StreamConfig{
		Window:   window,
		SpillDir: tmpl,
		OnWindowSpilled: func(w int) error {
			if w == killAfter {
				return errInjectedKill
			}
			return nil
		},
	})
	if !errors.Is(err, errInjectedKill) {
		t.Fatalf("expected injected kill, got %v", err)
	}
	lastRun := filepath.Join(tmpl, fmt.Sprintf("run-%05d.ckpt", killAfter))
	full, err := os.ReadFile(lastRun)
	if err != nil {
		t.Fatal(err)
	}

	work := t.TempDir()
	spill := filepath.Join(work, "spill")
	out := filepath.Join(work, "a.geodset")
	for cut := 0; cut <= len(full); cut++ {
		// Rebuild the spill dir: intact earlier runs, last run cut short.
		if err := os.RemoveAll(spill); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(spill, 0o755); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < killAfter; w++ {
			name := fmt.Sprintf("run-%05d.ckpt", w)
			data, err := os.ReadFile(filepath.Join(tmpl, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(spill, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(spill, filepath.Base(lastRun)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(out)
		stats, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
			Window:   window,
			SpillDir: spill,
			Resume:   true,
		})
		if err != nil {
			t.Fatalf("cut %d: resume failed: %v", cut, err)
		}
		if stats.WindowsReused < killAfter {
			t.Fatalf("cut %d: only %d windows reused", cut, stats.WindowsReused)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d: resumed artifact differs from golden", cut)
		}
	}
}

// TestCompileExternalResumeRejectsForeignRuns: runs from a different
// window size (or campaign) must not be replayed — the spill header
// hash pins both.
func TestCompileExternalResumeRejectsForeignRuns(t *testing.T) {
	const targets = 64
	src := streamSource(t, targets, 6)
	hdr := streamHeader(src)
	want := externalGolden(t, src, hdr, 8)

	dir := t.TempDir()
	spill := filepath.Join(dir, "spill")
	out := filepath.Join(dir, "a.geodset")
	// Crash a window-16 compile, then resume with window 8: nothing may
	// be reused, and the result must still be the window-8 golden bytes.
	_, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
		Window:   16,
		SpillDir: spill,
		OnWindowSpilled: func(w int) error {
			if w == 1 {
				return errInjectedKill
			}
			return nil
		},
	})
	if !errors.Is(err, errInjectedKill) {
		t.Fatalf("expected injected kill, got %v", err)
	}
	stats, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
		Window:   8,
		SpillDir: spill,
		Resume:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsReused != 0 {
		t.Fatalf("reused %d foreign runs", stats.WindowsReused)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact differs after window-size change")
	}
}

// TestCompileExternalDetectsCorruptRun: a bit flip in the middle of a
// sealed run must cause re-measurement (validRun fails), never replay
// of damaged records.
func TestCompileExternalDetectsCorruptRun(t *testing.T) {
	const targets, window = 64, 8
	src := streamSource(t, targets, 6)
	hdr := streamHeader(src)
	want := externalGolden(t, src, hdr, window)

	dir := t.TempDir()
	spill := filepath.Join(dir, "spill")
	out := filepath.Join(dir, "a.geodset")
	_, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
		Window:   window,
		SpillDir: spill,
		OnWindowSpilled: func(w int) error {
			if w == 2 {
				return errInjectedKill
			}
			return nil
		},
	})
	if !errors.Is(err, errInjectedKill) {
		t.Fatal("expected injected kill")
	}
	victim := filepath.Join(spill, "run-00001.ckpt")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := CompileExternal(out, src, hdr, Options{}, nil, StreamConfig{
		Window:   window,
		SpillDir: spill,
		Resume:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsReused != 2 { // runs 0 and 2 survive, 1 was damaged
		t.Fatalf("reused %d windows, want 2", stats.WindowsReused)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact differs after corrupt-run re-measurement")
	}
}

// TestCompileExternalSpillCleanup: run files are deleted on success by
// default and kept under KeepSpill.
func TestCompileExternalSpillCleanup(t *testing.T) {
	src := streamSource(t, 32, 6)
	hdr := streamHeader(src)
	for _, keep := range []bool{false, true} {
		dir := t.TempDir()
		spill := filepath.Join(dir, "spill")
		if _, err := CompileExternal(filepath.Join(dir, "a.geodset"), src, hdr, Options{}, nil,
			StreamConfig{Window: 8, SpillDir: spill, KeepSpill: keep}); err != nil {
			t.Fatal(err)
		}
		runs, err := filepath.Glob(filepath.Join(spill, "run-*.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if keep && len(runs) != 4 {
			t.Fatalf("KeepSpill left %d runs, want 4", len(runs))
		}
		if !keep && len(runs) != 0 {
			t.Fatalf("%d runs left after cleanup", len(runs))
		}
	}
}
