package router

import "testing"

// TestHealthDownAfterPassiveFailures pins the fast half of the state
// machine: DownAfter consecutive passive failures mark the replica down,
// and a success in between resets the streak.
func TestHealthDownAfterPassiveFailures(t *testing.T) {
	h := &replicaHealth{}
	h.recordOutcome(false, 0, 3)
	h.recordOutcome(true, 1, 3) // resets the streak
	h.recordOutcome(false, 0, 3)
	h.recordOutcome(false, 0, 3)
	if !h.Up() {
		t.Fatal("down after 2 consecutive failures with DownAfter=3")
	}
	h.recordOutcome(false, 0, 3)
	if h.Up() {
		t.Fatal("still up after 3 consecutive failures with DownAfter=3")
	}
	_, _, _, _, downs, _ := h.snapshot()
	if downs != 1 {
		t.Fatalf("downs = %d, want 1", downs)
	}
}

// TestHealthProbeFailuresAlsoCount pins that active probes feed the same
// failure streak: an idle replica can go down without any traffic.
func TestHealthProbeFailuresAlsoCount(t *testing.T) {
	h := &replicaHealth{}
	h.recordProbe(false, 2, 3)
	h.recordProbe(false, 2, 3)
	if h.Up() {
		t.Fatal("still up after DownAfter probe failures")
	}
}

// TestHealthReadmissionNeedsConsecutiveProbes pins the slow half: only
// UpAfter CONSECUTIVE probe successes re-admit, a failed probe resets
// the streak, and passive successes (there are none while down — the
// router does not route there — but defend anyway) never re-admit.
func TestHealthReadmissionNeedsConsecutiveProbes(t *testing.T) {
	h := &replicaHealth{}
	h.recordProbe(false, 1, 3)
	if h.Up() {
		t.Fatal("not down after DownAfter=1 failure")
	}
	h.recordOutcome(true, 1, 1) // passive success must not re-admit
	if h.Up() {
		t.Fatal("passive success re-admitted a down replica")
	}
	h.recordProbe(true, 1, 3)
	h.recordProbe(true, 1, 3)
	h.recordProbe(false, 1, 3) // flap: streak resets
	h.recordProbe(true, 1, 3)
	h.recordProbe(true, 1, 3)
	if h.Up() {
		t.Fatal("re-admitted without UpAfter consecutive probe successes")
	}
	h.recordProbe(true, 1, 3)
	if !h.Up() {
		t.Fatal("not re-admitted after UpAfter consecutive probe successes")
	}
	_, _, _, _, _, readmits := h.snapshot()
	if readmits != 1 {
		t.Fatalf("readmits = %d, want 1", readmits)
	}
}

// TestHealthHedgeDelayTracksP99 pins the hedge-delay estimate: with a
// latency population dominated by 1ms and a few 100ms outliers the p99
// must sit at the outlier end, and an empty ring reports 0 (the caller
// clamps to HedgeMin).
func TestHealthHedgeDelayTracksP99(t *testing.T) {
	h := &replicaHealth{}
	if got := h.hedgeDelayMs(); got != 0 {
		t.Fatalf("empty ring hedge delay = %v, want 0", got)
	}
	for i := 0; i < 200; i++ {
		lat := 1.0
		if i%50 == 0 { // 4 outliers in 200 → above the 99th percentile boundary
			lat = 100
		}
		h.recordOutcome(true, lat, 3)
	}
	if got := h.hedgeDelayMs(); got != 100 {
		t.Fatalf("hedge delay = %v, want 100 (the outlier p99)", got)
	}
}

// TestP99Of pins the nearest-rank percentile helper on small samples.
func TestP99Of(t *testing.T) {
	if got := p99Of([]float64{5}); got != 5 {
		t.Fatalf("p99 of single sample = %v", got)
	}
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1) // 1..100 shuffled order not needed: p99Of sorts
	}
	if got := p99Of(s); got != 99 {
		t.Fatalf("p99 of 1..100 = %v, want 99", got)
	}
}
