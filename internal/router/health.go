// Per-replica health: the state machine that decides which replicas
// receive traffic.
//
// Two signals feed it. Passive scoring comes for free with every proxied
// request — a transport error or 5xx is a failure, anything else a
// success, and an EWMA of latency and error rate rides along for the
// gauges and the hedge-delay estimate. Active probing hits /readyz on a
// fixed interval so a replica with no traffic (or one whose range every
// client gave up on) still changes state.
//
// Transitions are deliberately asymmetric: DownAfter consecutive
// failures (from either signal) mark the replica down — fast, because
// every failed attempt cost a client latency — but only UpAfter
// consecutive *probe* successes re-admit it, so a flapping replica must
// prove a sustained recovery before it gets traffic again. While down, a
// replica receives probes and nothing else.
package router

import (
	"sync"
)

// replicaHealth tracks one replica's admission state and scores. All
// mutable state is behind one mutex — health events are rare relative to
// requests, and the hot-path read (Up) is a single lock/load/unlock.
type replicaHealth struct {
	mu sync.Mutex

	down        bool
	consecFails int // consecutive failures, passive + probe
	probeOKs    int // consecutive probe successes while down

	ewmaLatMs float64 // EWMA of successful-request latency
	ewmaErr   float64 // EWMA error rate over passive outcomes
	ewmaInit  bool

	// ring holds recent successful-request latencies for the p99 the
	// hedge delay derives from; p99Cache is recomputed lazily every
	// p99Every inserts.
	ring     [256]float64
	ringIdx  int
	ringN    int
	p99Cache float64
	p99Dirty int

	// Event counts surfaced through the router's metrics refresh.
	downs, readmits uint64
}

// ewmaAlpha weighs new observations; ~1/16 is slow enough to ride out a
// single slow request and fast enough to track a real shift.
const ewmaAlpha = 1.0 / 16

// p99Every bounds how often the latency ring is re-sorted for the p99
// estimate.
const p99Every = 32

// Up reports whether the replica is admitted for traffic.
func (h *replicaHealth) Up() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down
}

// recordOutcome folds one passive (proxied-request) outcome into the
// scores and the state machine. latMs is meaningful only for successes.
func (h *replicaHealth) recordOutcome(ok bool, latMs float64, downAfter int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	errVal := 1.0
	if ok {
		errVal = 0
	}
	if !h.ewmaInit {
		h.ewmaErr = errVal
		if ok {
			h.ewmaLatMs = latMs
		}
		h.ewmaInit = true
	} else {
		h.ewmaErr += ewmaAlpha * (errVal - h.ewmaErr)
		if ok {
			h.ewmaLatMs += ewmaAlpha * (latMs - h.ewmaLatMs)
		}
	}
	if ok {
		h.ring[h.ringIdx] = latMs
		h.ringIdx = (h.ringIdx + 1) % len(h.ring)
		if h.ringN < len(h.ring) {
			h.ringN++
		}
		h.p99Dirty++
		if !h.down {
			h.consecFails = 0
		}
		return
	}
	h.fail(downAfter)
}

// recordProbe folds one active /readyz probe outcome into the state
// machine. Probes are the only signal that can re-admit a down replica.
func (h *replicaHealth) recordProbe(ok bool, downAfter, upAfter int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !ok {
		h.probeOKs = 0
		h.fail(downAfter)
		return
	}
	if !h.down {
		h.consecFails = 0
		return
	}
	h.probeOKs++
	if h.probeOKs >= upAfter {
		h.down = false
		h.consecFails = 0
		h.probeOKs = 0
		h.readmits++
	}
}

// fail records one failure; callers hold mu.
func (h *replicaHealth) fail(downAfter int) {
	h.consecFails++
	h.probeOKs = 0
	if !h.down && h.consecFails >= downAfter {
		h.down = true
		h.downs++
	}
}

// hedgeDelayMs returns the p99 of recent successful latencies — the
// delay after which a second request is statistically cheaper than
// continuing to wait — or 0 when there is no sample yet (the caller
// clamps into [HedgeMin, HedgeMax] either way).
func (h *replicaHealth) hedgeDelayMs() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ringN == 0 {
		return 0
	}
	if h.p99Dirty >= p99Every || h.p99Cache == 0 {
		h.p99Cache = p99Of(h.ring[:h.ringN])
		h.p99Dirty = 0
	}
	return h.p99Cache
}

// snapshot returns the gauge view: state, scores, event counts.
func (h *replicaHealth) snapshot() (up bool, consecFails int, latMs, errRate float64, downs, readmits uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down, h.consecFails, h.ewmaLatMs, h.ewmaErr, h.downs, h.readmits
}

// p99Of computes the nearest-rank p99 of an unsorted sample (copied, so
// the ring's insert order is preserved).
func p99Of(sample []float64) float64 {
	s := make([]float64, len(sample))
	copy(s, sample)
	// Insertion sort: the sample is at most 256 wide and this runs off
	// the request path (cached, every p99Every inserts).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	i := int(0.99*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
