package router

import (
	"math"
	"testing"

	"geoloc/internal/ipaddr"
	"geoloc/internal/rhash"
)

// oracleReplicaFor is the linear-scan spec ReplicaFor must match: walk
// every range and return the (unique) one containing the address.
// Returns -1 on no cover and -2 on overlap so the property test can
// tell the failure modes apart.
func oracleReplicaFor(rs Ranges, a ipaddr.Addr) int {
	found := -1
	for _, r := range rs {
		if r.Contains(a) {
			if found != -1 {
				return -2
			}
			found = r.Replica
		}
	}
	return found
}

// TestPartitionCoversIPv4 is the satellite property test: for every
// replica count 1..16 (and a few awkward larger ones) the partition
// covers all of IPv4 with no overlaps, every range is non-empty and
// prefix-aligned, and binary-search ReplicaFor agrees with the
// linear-scan oracle on boundary and random addresses.
func TestPartitionCoversIPv4(t *testing.T) {
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 100, 256}
	for _, n := range counts {
		rs := Partition(n)
		if len(rs) != n {
			t.Fatalf("n=%d: %d ranges", n, len(rs))
		}
		p := PrefixBits(n)
		if 1<<p < n || (p > 0 && 1<<(p-1) >= n) {
			t.Fatalf("n=%d: PrefixBits = %d", n, p)
		}
		align := uint32(1)<<(32-p) - 1 // low bits that must be zero/one at range edges
		// Structural sweep: sorted, contiguous, exhaustive, aligned.
		if rs[0].Lo != 0 {
			t.Fatalf("n=%d: first range starts at %s", n, rs[0].Lo)
		}
		if uint32(rs[n-1].Hi) != math.MaxUint32 {
			t.Fatalf("n=%d: last range ends at %s", n, rs[n-1].Hi)
		}
		for i, r := range rs {
			if r.Replica != i {
				t.Fatalf("n=%d: range %d owned by replica %d", n, i, r.Replica)
			}
			if r.Hi < r.Lo {
				t.Fatalf("n=%d: empty range %d (%s-%s)", n, i, r.Lo, r.Hi)
			}
			if uint32(r.Lo)&align != 0 || uint32(r.Hi)&align != align {
				t.Fatalf("n=%d: range %d (%s-%s) not /%d-aligned", n, i, r.Lo, r.Hi, p)
			}
			if i > 0 && uint32(r.Lo) != uint32(rs[i-1].Hi)+1 {
				t.Fatalf("n=%d: gap or overlap between range %d and %d", n, i-1, i)
			}
		}
		// Point checks against the oracle: every range boundary (and its
		// neighbours) plus seeded random addresses.
		var probes []ipaddr.Addr
		for _, r := range rs {
			probes = append(probes, r.Lo, r.Hi)
			if r.Lo > 0 {
				probes = append(probes, r.Lo-1)
			}
			if uint32(r.Hi) < math.MaxUint32 {
				probes = append(probes, r.Hi+1)
			}
		}
		for i := 0; i < 500; i++ {
			probes = append(probes, ipaddr.Addr(uint32(rhash.Hash(uint64(n), 77, uint64(i)))))
		}
		for _, a := range probes {
			want := oracleReplicaFor(rs, a)
			switch want {
			case -1:
				t.Fatalf("n=%d: %s covered by no range", n, a)
			case -2:
				t.Fatalf("n=%d: %s covered by more than one range", n, a)
			}
			if got := rs.ReplicaFor(a); got != want {
				t.Fatalf("n=%d: ReplicaFor(%s) = %d, oracle says %d", n, a, got, want)
			}
		}
	}
}

// TestPartitionDeterministic pins that the partition is a pure function
// of n — the router, geobench's chaos target pick, and the docs all
// recompute it independently and must agree.
func TestPartitionDeterministic(t *testing.T) {
	for n := 1; n <= 16; n++ {
		a, b := Partition(n), Partition(n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: Partition not deterministic at range %d", n, i)
			}
		}
	}
}

// TestPartitionPanicsOutOfRange pins the guard rails.
func TestPartitionPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 1<<16 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d) did not panic", n)
				}
			}()
			Partition(n)
		}()
	}
}
