package router

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"geoloc/internal/core"
	"geoloc/internal/dataset"
	"geoloc/internal/serve"
	"geoloc/internal/telemetry"
	"geoloc/internal/world"
)

var (
	fleetTinyOnce sync.Once
	fleetTinyDS   *dataset.Dataset
)

func fleetTinyDataset() *dataset.Dataset {
	fleetTinyOnce.Do(func() {
		c := core.NewCampaign(world.TinyConfig())
		fleetTinyDS = dataset.Compile(c, dataset.Options{IncludeUnsanitized: true})
	})
	return fleetTinyDS
}

// newFleetRouter stands up a LocalFleet of n real serve replicas plus a
// router (probes running) in front of it.
func newFleetRouter(t *testing.T, n int, cfg Config) (*LocalFleet, *Router, *httptest.Server) {
	t.Helper()
	fleet, err := NewLocalFleet(n, fleetTinyDataset(), "test:tiny", serve.Config{})
	if err != nil {
		t.Fatalf("NewLocalFleet: %v", err)
	}
	t.Cleanup(fleet.Close)
	cfg.ReplicaURLs = fleet.Addrs()
	cfg.Controller = fleet
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	if cfg.UpstreamTimeout == 0 {
		cfg.UpstreamTimeout = time.Second
	}
	rt, err := New(cfg, telemetry.New())
	if err != nil {
		t.Fatalf("New router: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return fleet, rt, ts
}

// hotIP returns an address the tiny dataset actually has a record for —
// the traffic every chaos scenario aims at.
func hotIP() string {
	return fleetTinyDataset().Records[0].Prefix.Addr(1).String()
}

// TestLocalFleetStopStart pins the fleet lifecycle contract: Stop is an
// abrupt crash, Start revives the replica on its ORIGINAL address (the
// router's replica table is fixed), and double stop/start error.
func TestLocalFleetStopStart(t *testing.T) {
	fleet, err := NewLocalFleet(2, fleetTinyDataset(), "test:tiny", serve.Config{})
	if err != nil {
		t.Fatalf("NewLocalFleet: %v", err)
	}
	defer fleet.Close()
	addrs := fleet.Addrs()

	resp, err := http.Get(addrs[0] + "/healthz")
	if err != nil {
		t.Fatalf("replica 0 before stop: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := fleet.StopReplica(0); err != nil {
		t.Fatalf("StopReplica: %v", err)
	}
	if err := fleet.StopReplica(0); err == nil {
		t.Error("double stop did not error")
	}
	if _, err := http.Get(addrs[0] + "/healthz"); err == nil {
		t.Fatal("stopped replica still answers")
	}
	if fleet.Running(0) {
		t.Error("Running(0) true after stop")
	}

	if err := fleet.StartReplica(0); err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	if err := fleet.StartReplica(0); err == nil {
		t.Error("double start did not error")
	}
	if addrs2 := fleet.Addrs(); addrs2[0] != addrs[0] {
		t.Fatalf("replica 0 moved from %s to %s on restart", addrs[0], addrs2[0])
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(addrs[0] + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never answered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLocalFleetStall pins the stall primitive: a stalled replica
// accepts the connection and then hangs until the request context dies.
func TestLocalFleetStall(t *testing.T) {
	fleet, err := NewLocalFleet(1, fleetTinyDataset(), "test:tiny", serve.Config{})
	if err != nil {
		t.Fatalf("NewLocalFleet: %v", err)
	}
	defer fleet.Close()
	if err := fleet.StallReplica(0, true); err != nil {
		t.Fatalf("StallReplica: %v", err)
	}
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := client.Get(fleet.Addrs()[0] + "/healthz"); err == nil {
		t.Fatal("stalled replica answered")
	}
	if err := fleet.StallReplica(0, false); err != nil {
		t.Fatalf("unstall: %v", err)
	}
	resp, err := client.Get(fleet.Addrs()[0] + "/healthz")
	if err != nil {
		t.Fatalf("unstalled replica: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestRouterSurvivesReplicaCrash is the in-package chaos rehearsal: a
// 4-replica fleet with replication 2, the hot replica crashed mid-run —
// every lookup keeps answering 200 (failing over), the crash shows up
// in the health table, and the revived replica is re-admitted.
func TestRouterSurvivesReplicaCrash(t *testing.T) {
	fleet, rt, ts := newFleetRouter(t, 4, Config{
		Replication: 2,
		DownAfter:   2,
		UpAfter:     2,
	})
	ip := hotIP()
	hot := rt.Ranges().ReplicaFor(fleetTinyDataset().Records[0].Prefix.Addr(0))

	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/lookup?ip=" + ip)
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("X-Router-Replica")
	}

	if code, rep := get(); code != http.StatusOK || rep == "" {
		t.Fatalf("pre-crash lookup: %d via %q", code, rep)
	}
	if err := fleet.StopReplica(hot); err != nil {
		t.Fatalf("StopReplica(%d): %v", hot, err)
	}
	// Every request during the outage must still answer 200 — the
	// fallback owns the range too. (A few early ones pay a failover.)
	for i := 0; i < 20; i++ {
		if code, _ := get(); code != http.StatusOK {
			t.Fatalf("lookup %d during outage: %d, want 200 via failover", i, code)
		}
	}
	waitReplicaState(t, ts.URL, hot, "down")
	if err := fleet.StartReplica(hot); err != nil {
		t.Fatalf("StartReplica(%d): %v", hot, err)
	}
	waitReplicaState(t, ts.URL, hot, "up")
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("post-recovery lookup: %d", code)
	}
}

// TestAdminReplicaDrivesFleet pins the HTTP chaos surface end to end:
// stop and start through /admin/replica actually crash and revive the
// serve replica behind the router.
func TestAdminReplicaDrivesFleet(t *testing.T) {
	fleet, _, ts := newFleetRouter(t, 2, Config{
		Replication: 2,
		AdminToken:  "sekrit",
	})
	post := func(q string) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/replica?"+q, nil)
		req.Header.Set("X-Admin-Token", "sekrit")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("admin: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("replica=1&action=stop"); got != http.StatusOK {
		t.Fatalf("stop via admin: %d", got)
	}
	if fleet.Running(1) {
		t.Fatal("replica 1 still running after admin stop")
	}
	if got := post("replica=1&action=stop"); got != http.StatusConflict {
		t.Errorf("double stop via admin: %d, want 409", got)
	}
	if got := post("replica=1&action=start"); got != http.StatusOK {
		t.Fatalf("start via admin: %d", got)
	}
	if !fleet.Running(1) {
		t.Fatal("replica 1 not running after admin start")
	}
}

// TestRouterVersionProxies pins /version: the router answers with the
// fleet's artifact identity from any live replica.
func TestRouterVersionProxies(t *testing.T) {
	_, _, ts := newFleetRouter(t, 2, Config{Replication: 2})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/version: %d", resp.StatusCode)
	}
	var v struct {
		Records int    `json:"records"`
		Source  string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v.Records != len(fleetTinyDataset().Records) || v.Source != "test:tiny" {
		t.Errorf("version = %+v, want the fleet artifact", v)
	}
}
