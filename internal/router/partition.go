// Package router is the replicated front tier of the serving stack
// (DESIGN.md §3.8): it partitions the IPv4 space into prefix-aligned
// ranges owned by N geoserve replicas, routes every lookup to its
// range's primary, and keeps answering when replicas die — health-aware
// failover to designated fallback replicas, jittered exponential-backoff
// retries, optional tail-latency hedging, and a bounded failure domain:
// a dead replica degrades only its own prefix range (503 + Retry-After,
// never a hang), and recovers by passing consecutive readiness probes.
//
// Every replica serves the full artifact; the prefix partition shards
// *load* (and per-replica cache locality), not data, which is exactly
// what makes failover possible: any fallback can answer any address.
package router

import (
	"math"
	"sort"

	"geoloc/internal/ipaddr"
)

// Range is one contiguous, prefix-aligned span of IPv4 space,
// [Lo, Hi] both inclusive (inclusive bounds avoid the 2^32 overflow a
// half-open top range would need), owned by one replica.
type Range struct {
	Lo, Hi  ipaddr.Addr
	Replica int
}

// Contains reports whether the address lies inside the range.
func (r Range) Contains(a ipaddr.Addr) bool { return r.Lo <= a && a <= r.Hi }

// Ranges is a partition of the IPv4 space: sorted, non-overlapping,
// jointly exhaustive ranges as produced by Partition.
type Ranges []Range

// PrefixBits returns the prefix length p used to partition for n
// replicas: the smallest p with 2^p >= n, so every replica owns at
// least one whole /p prefix.
func PrefixBits(n int) int {
	p := 0
	for 1<<p < n {
		p++
	}
	return p
}

// Partition splits the IPv4 space into n contiguous prefix-aligned
// ranges, one per replica, as evenly as integer arithmetic allows: with
// p = PrefixBits(n) the 2^p /p-prefixes are dealt out in contiguous
// blocks of floor/ceil(2^p/n). The result covers every address exactly
// once — the property test checks this against a linear-scan oracle for
// every replica count the router supports.
func Partition(n int) Ranges {
	if n < 1 || n > 1<<16 {
		panic("router: Partition needs 1 <= n <= 65536 replicas")
	}
	p := PrefixBits(n)
	total := uint64(1) << p
	shift := uint(32 - p)
	out := make(Ranges, 0, n)
	for i := 0; i < n; i++ {
		loPfx := uint64(i) * total / uint64(n)
		hiPfx := uint64(i+1) * total / uint64(n)
		lo := uint32(loPfx << shift)
		hi := uint32(math.MaxUint32)
		if hiPfx < total {
			hi = uint32(hiPfx<<shift) - 1
		}
		out = append(out, Range{Lo: ipaddr.Addr(lo), Hi: ipaddr.Addr(hi), Replica: i})
	}
	return out
}

// ReplicaFor returns the replica owning addr: binary search over the
// sorted partition. The linear-scan oracle in the property test is the
// spec this must match.
func (rs Ranges) ReplicaFor(a ipaddr.Addr) int {
	i := sort.Search(len(rs), func(j int) bool { return a <= rs[j].Hi })
	if i >= len(rs) {
		// Unreachable for a Partition result (the last Hi is the top
		// address); defend against a hand-built partial Ranges.
		i = len(rs) - 1
	}
	return rs[i].Replica
}
