package router

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"geoloc/internal/dataset"
	"geoloc/internal/serve"
	"geoloc/internal/telemetry"
)

// LocalFleet runs N serve.Server replicas in one process, each with its
// own registry, listener, and http.Server — the single-binary
// multi-replica mode behind `geoserve -router -replicas N`, and the
// substrate the chaos proof kills and revives replicas on.
//
// Stop is an abrupt crash (http.Server.Close: listeners closed,
// connections reset), not a drain — that is the failure the router has
// to survive. Start re-binds the replica's ORIGINAL address, because
// the router's replica table is fixed at construction; the listen is
// retried briefly to ride out the old socket's teardown.
type LocalFleet struct {
	mu       sync.Mutex
	replicas []*localReplica
}

// localReplica is one fleet member.
type localReplica struct {
	addr    string // "127.0.0.1:port", fixed at first bind
	srv     *serve.Server
	handler http.Handler // stall-wrapped serve handler
	stalled atomic.Bool

	httpSrv *http.Server
	running bool
}

// NewLocalFleet builds, publishes, and starts n replicas over the same
// dataset. Every replica gets a private registry and an instance label
// ("replica-i") so scraping any member stays unambiguous. Each replica's
// caches are keyed to its partition of the address space (the same
// Partition the router's sharded mode routes by) and pre-warmed at
// publish, so the replica that owns a range serves it hot from the first
// request while stray out-of-partition traffic cannot evict its working
// set.
func NewLocalFleet(n int, ds *dataset.Dataset, source string, cfg serve.Config) (*LocalFleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("router: fleet needs at least 1 replica, got %d", n)
	}
	ranges := Partition(n)
	f := &LocalFleet{}
	for i := 0; i < n; i++ {
		rcfg := cfg
		if rcfg.MetricsLabel == "" {
			rcfg.MetricsLabel = fmt.Sprintf("replica-%d", i)
		} else {
			rcfg.MetricsLabel = fmt.Sprintf("%s-replica-%d", cfg.MetricsLabel, i)
		}
		if rcfg.Warm == nil {
			rcfg.Warm = &serve.WarmRange{Lo: ranges[i].Lo, Hi: ranges[i].Hi}
		}
		srv := serve.New(rcfg, telemetry.New())
		srv.Publish(ds, source)
		r := &localReplica{srv: srv}
		r.handler = stallWrap(&r.stalled, srv.Handler())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("router: bind replica %d: %w", i, err)
		}
		r.addr = ln.Addr().String()
		r.serveOn(ln)
		f.replicas = append(f.replicas, r)
	}
	return f, nil
}

// stallWrap freezes the handler while the flag is set: the request is
// accepted, then hangs until its context expires — the pathological
// "TCP up, application dead" failure that only probing with a timeout
// can detect.
func stallWrap(stalled *atomic.Bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalled.Load() {
			<-r.Context().Done()
			return
		}
		next.ServeHTTP(w, r)
	})
}

// serveOn starts the replica's http.Server on ln; callers hold f.mu (or
// are in the constructor before the fleet is shared).
func (r *localReplica) serveOn(ln net.Listener) {
	hs := &http.Server{Handler: r.handler}
	r.httpSrv = hs
	r.running = true
	go hs.Serve(ln) //nolint:errcheck // Serve always returns on Close; the error is the shutdown signal
}

// Addrs returns the fleet's base URLs in replica order — the router's
// ReplicaURLs input.
func (f *LocalFleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = "http://" + r.addr
	}
	return out
}

// Servers returns the underlying serve.Servers (for republishing a
// reloaded dataset to the whole fleet).
func (f *LocalFleet) Servers() []*serve.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*serve.Server, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = r.srv
	}
	return out
}

// StopReplica crashes replica i abruptly. Idempotent-hostile on
// purpose: stopping a stopped replica is a caller bug and errors.
func (f *LocalFleet) StopReplica(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.replica(i)
	if err != nil {
		return err
	}
	if !r.running {
		return fmt.Errorf("replica %d already stopped", i)
	}
	r.running = false
	return r.httpSrv.Close()
}

// StartReplica revives a stopped replica on its original address. The
// bind is retried briefly: the crashed server's socket may still be
// tearing down.
func (f *LocalFleet) StartReplica(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.replica(i)
	if err != nil {
		return err
	}
	if r.running {
		return fmt.Errorf("replica %d already running", i)
	}
	var ln net.Listener
	for try := 0; ; try++ {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		if try >= 40 {
			return fmt.Errorf("replica %d: re-bind %s: %w", i, r.addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	r.serveOn(ln)
	return nil
}

// StallReplica sets or clears the stall flag on replica i.
func (f *LocalFleet) StallReplica(i int, stalled bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.replica(i)
	if err != nil {
		return err
	}
	r.stalled.Store(stalled)
	return nil
}

// Running reports whether replica i is currently serving.
func (f *LocalFleet) Running(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.replica(i)
	return err == nil && r.running
}

// Close stops every running replica.
func (f *LocalFleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.replicas {
		if r.running {
			r.running = false
			r.httpSrv.Close() //nolint:errcheck // shutdown path
		}
	}
}

// replica bounds-checks i; callers hold f.mu.
func (f *LocalFleet) replica(i int) (*localReplica, error) {
	if i < 0 || i >= len(f.replicas) {
		return nil, fmt.Errorf("replica %d out of range [0, %d)", i, len(f.replicas))
	}
	return f.replicas[i], nil
}
