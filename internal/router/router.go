package router

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geoloc/internal/faults"
	"geoloc/internal/ipaddr"
	"geoloc/internal/obs"
	"geoloc/internal/rhash"
	"geoloc/internal/serve"
	"geoloc/internal/telemetry"
)

// Defaults for Config fields left zero. Retry backoff starts small: a
// failover target is a different process, so there is no reason to make
// the client pay a long penance before trying it.
const (
	DefaultReplication     = 2
	DefaultUpstreamTimeout = 2 * time.Second
	DefaultRequestTimeout  = 5 * time.Second
	DefaultRetryBase       = 2 * time.Millisecond
	DefaultRetryMax        = 50 * time.Millisecond
	DefaultHedgeMin        = 5 * time.Millisecond
	DefaultHedgeMax        = 200 * time.Millisecond
	DefaultProbeInterval   = 200 * time.Millisecond
	DefaultProbeTimeout    = time.Second
	DefaultDownAfter       = 2
	DefaultUpAfter         = 3
)

// maxUpstreamBody bounds how much of a replica response the router will
// buffer: the /batch response ceiling plus envelope headroom.
const maxUpstreamBody = 1<<22 + 4096

// Deterministic jitter namespace (see internal/rhash).
var kRetryBackoff = rhash.HashString("router/retry-backoff")

// FleetController lets the router's admin plane (and geoserve's fault
// loop) manipulate replicas at the process-lifecycle level. LocalFleet
// implements it for the single-binary multi-replica mode; a multi-host
// deployment would implement it against its supervisor.
type FleetController interface {
	// StopReplica kills the replica abruptly (connections reset, no
	// drain) — the chaos primitive, not a graceful shutdown.
	StopReplica(i int) error
	// StartReplica restarts a stopped replica on its original address.
	StartReplica(i int) error
	// StallReplica freezes (or unfreezes) the replica's handler: requests
	// are accepted and then hang until their context expires.
	StallReplica(i int, stalled bool) error
}

// Config parameterizes a Router.
type Config struct {
	// ReplicaURLs are the base URLs ("http://host:port") of the fleet,
	// in partition order: replica i owns Partition(n)[i].
	ReplicaURLs []string

	// Replication is how many consecutive ring positions may answer for
	// a range: the range's primary plus Replication-1 designated
	// fallbacks. 1 disables failover entirely — a dead primary means its
	// range answers 503 until the probes re-admit it.
	Replication int

	// MaxBatch caps /batch input size (pre-scatter, whole request).
	MaxBatch int

	// UpstreamTimeout bounds one attempt against one replica;
	// RequestTimeout bounds the whole routed request across retries and
	// hedges.
	UpstreamTimeout time.Duration
	RequestTimeout  time.Duration

	// RetryBase/RetryMax shape the jittered exponential backoff between
	// failover attempts.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Hedge enables tail-latency hedging on /lookup: when the primary
	// has not answered within its p99 (clamped to [HedgeMin, HedgeMax]),
	// the first fallback gets a copy of the request and the first
	// response wins; the loser is canceled.
	Hedge    bool
	HedgeMin time.Duration
	HedgeMax time.Duration

	// Probing: every ProbeInterval each replica's /readyz is checked
	// with a ProbeTimeout budget. DownAfter consecutive failures mark a
	// replica down; UpAfter consecutive probe successes re-admit it.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DownAfter     int
	UpAfter       int

	// RetryAfter is the base of the jittered Retry-After hint on 503s
	// for uncovered ranges (serve.DefaultRetryAfter when zero).
	RetryAfter time.Duration

	// Seed keys all deterministic jitter (backoff, Retry-After) and the
	// probe-stall fault draws.
	Seed uint64

	// Prof optionally injects deterministic probe-path faults.
	Prof *faults.Profile

	// AdminToken guards /admin/replica; empty disables the endpoint.
	AdminToken string

	// Controller backs /admin/replica (nil → 501).
	Controller FleetController

	// MetricsLabel tags every metric on /metrics with instance="...".
	MetricsLabel string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.Replication > len(c.ReplicaURLs) {
		c.Replication = len(c.ReplicaURLs)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = serve.DefaultMaxBatch
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = DefaultUpstreamTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = DefaultHedgeMin
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = DefaultHedgeMax
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.DownAfter <= 0 {
		c.DownAfter = DefaultDownAfter
	}
	if c.UpAfter <= 0 {
		c.UpAfter = DefaultUpAfter
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = serve.DefaultRetryAfter
	}
	return c
}

// statusKey indexes the per-status ledger.
type statusKey struct {
	code  int
	plane string
}

// Router is the replicated front tier: one HTTP handler that owns the
// partition, the health state, and the failover/hedge machinery.
type Router struct {
	cfg    Config
	reg    *telemetry.Registry
	ranges Ranges
	health []*replicaHealth
	client *http.Client

	draining atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// jitterSeq keys each backoff / Retry-After draw so concurrent
	// requests do not share one jitter value.
	jitterSeq atomic.Uint64

	mFailovers    *telemetry.Counter // failed-over answers, weighted by failovers per answer
	mHedges       *telemetry.Counter // hedge requests launched
	mHedgeWins    *telemetry.Counter // answers won by the hedge
	mRetries      *telemetry.Counter // failover attempts dispatched
	mRangeUnavail *telemetry.Counter // 503s for ranges with no live candidate
	mProbes       *telemetry.Counter
	mProbeFails   *telemetry.Counter
	writeErrs     *telemetry.Counter

	statusMu   sync.Mutex
	statusCtrs map[statusKey]*telemetry.Counter
}

// New builds a Router over the given fleet. Call Start to begin health
// probing and Close to stop it.
func New(cfg Config, reg *telemetry.Registry) (*Router, error) {
	if len(cfg.ReplicaURLs) == 0 {
		return nil, errors.New("router: no replica URLs")
	}
	if len(cfg.ReplicaURLs) > 1<<16 {
		return nil, fmt.Errorf("router: %d replicas exceeds the partition limit", len(cfg.ReplicaURLs))
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:    cfg,
		reg:    reg,
		ranges: Partition(len(cfg.ReplicaURLs)),
		health: make([]*replicaHealth, len(cfg.ReplicaURLs)),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		stop:          make(chan struct{}),
		mFailovers:    reg.Counter("georouter.failovers"),
		mHedges:       reg.Counter("georouter.hedges"),
		mHedgeWins:    reg.Counter("georouter.hedge_wins"),
		mRetries:      reg.Counter("georouter.retries"),
		mRangeUnavail: reg.Counter("georouter.range_unavailable"),
		mProbes:       reg.Counter("georouter.probes"),
		mProbeFails:   reg.Counter("georouter.probe_failures"),
		writeErrs:     reg.Counter("georouter.write_errors"),
		statusCtrs:    map[statusKey]*telemetry.Counter{},
	}
	for i := range rt.health {
		rt.health[i] = &replicaHealth{}
	}
	return rt, nil
}

// Start launches one prober goroutine per replica.
func (rt *Router) Start() {
	for i := range rt.cfg.ReplicaURLs {
		rt.wg.Add(1)
		go rt.probeLoop(i)
	}
}

// Close stops the probers and waits for them.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// StartDrain flips /readyz to 503 (data plane keeps serving), mirroring
// serve.Server's drain contract.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Ranges returns the partition (read-only; shared slice).
func (rt *Router) Ranges() Ranges { return rt.ranges }

// candidates returns the up replicas allowed to answer for primary's
// range: the Replication consecutive ring positions starting at the
// primary, filtered by health. Deliberately NOT a whole-ring scan — the
// bounded failure domain is the point: with Replication=1 a dead
// primary leaves its range uncovered (503), it does not silently spread
// load to replicas that never signed up for that range.
func (rt *Router) candidates(primary int) []int {
	n := len(rt.cfg.ReplicaURLs)
	out := make([]int, 0, rt.cfg.Replication)
	for k := 0; k < rt.cfg.Replication; k++ {
		i := (primary + k) % n
		if rt.health[i].Up() {
			out = append(out, i)
		}
	}
	return out
}

// Handler returns the router's routing table wrapped in the observe
// middleware (request ID + status ledger).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", rt.handleLookup)
	mux.HandleFunc("/batch", rt.handleBatch)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/version", rt.handleVersion)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/admin/replica", rt.handleAdminReplica)
	return rt.observe(mux)
}

// observe assigns/echoes the request ID and feeds the status ledger —
// the router-side mirror of serve's middleware, so geobench can
// cross-check its client ledger against georouter.status the same way
// it does against geoserve.status.
func (rt *Router) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, _ := obs.RequestID(r)
		w.Header().Set(obs.RequestIDHeader, id)
		r.Header.Set(obs.RequestIDHeader, id) // forwarded verbatim on every upstream hop
		sw := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		rt.statusCounter(sw.Status(), planeOfPath(r.URL.Path)).Inc()
	})
}

// planeOfPath mirrors serve's data/control split.
func planeOfPath(path string) string {
	if path == "/lookup" || path == "/batch" {
		return "data"
	}
	return "control"
}

// statusRecorder records the final status code of a response.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Status returns the recorded status (200 if the handler never wrote).
func (w *statusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusCounter returns the ledger counter for one (status, plane) pair.
func (rt *Router) statusCounter(code int, plane string) *telemetry.Counter {
	rt.statusMu.Lock()
	defer rt.statusMu.Unlock()
	k := statusKey{code: code, plane: plane}
	c, ok := rt.statusCtrs[k]
	if !ok {
		c = rt.reg.Counter(telemetry.Name("georouter.status",
			telemetry.Label{Key: "code", Value: strconv.Itoa(code)},
			telemetry.Label{Key: "plane", Value: plane}))
		rt.statusCtrs[k] = c
	}
	return c
}

// errBody is the JSON error envelope (same shape as serve's).
type errBody struct {
	Error string `json:"error"`
}

// writeJSON writes one JSON document with the given status.
func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.writeErrs.Inc()
	}
}

// writeUnavailable is the bounded-failure-domain answer: 503 with a
// jittered Retry-After so the range's clients come back spread out, not
// as one synchronized wave the moment the replica recovers.
func (rt *Router) writeUnavailable(w http.ResponseWriter, primary int) {
	rt.mRangeUnavail.Inc()
	secs := serve.RetryAfterSecs(rt.cfg.RetryAfter, rt.cfg.Seed, uint64(primary), rt.jitterSeq.Add(1))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	rt.writeJSON(w, http.StatusServiceUnavailable,
		errBody{fmt.Sprintf("no live replica for range of replica %d", primary)})
}

// upResult is one attempt's outcome.
type upResult struct {
	replica int
	hedge   bool
	status  int
	ctype   string
	body    []byte
	err     error
}

// ok reports whether the attempt produced a proxyable answer: any
// upstream response below 500 (404s and 400s are real answers that must
// not trigger failover — the fallback would just repeat them).
func (r upResult) ok() bool { return r.err == nil && r.status < http.StatusInternalServerError }

// execute races one request across the candidate replicas: primary
// first, a hedge copy to the next candidate after hedgeDelay (when
// enabled), and failover to the remaining candidates — with jittered
// exponential backoff — each time an attempt fails with a transport
// error or 5xx. First proxyable answer wins and cancels the losers.
//
// Returns the winning result plus the number of failed attempts that
// preceded it, or ok=false when every candidate was exhausted (the
// caller distinguishes deadline expiry from exhaustion via ctx.Err()).
func (rt *Router) execute(ctx context.Context, cands []int, hedge bool,
	mk func(ctx context.Context, replica int) (*http.Request, error)) (win upResult, failures int, ok bool) {

	resCh := make(chan upResult, len(cands)+1)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	inflight := 0
	launch := func(replica int, hedged bool) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		inflight++
		go rt.attempt(actx, replica, hedged, mk, resCh)
	}

	next := 0
	launch(cands[next], false)
	next++

	var hedgeC <-chan time.Time
	if hedge && rt.cfg.Hedge && len(cands) > 1 {
		t := time.NewTimer(rt.hedgeDelay(cands[0]))
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case r := <-resCh:
			inflight--
			if r.ok() {
				return r, failures, true
			}
			failures++
			if inflight > 0 {
				// A hedge (or an earlier straggler) is still running; its
				// answer may land any moment — no need to dispatch more.
				continue
			}
			if next >= len(cands) {
				return upResult{}, failures, false
			}
			if !sleepCtx(ctx, rt.backoff(failures)) {
				return upResult{}, failures, false
			}
			rt.mRetries.Inc()
			launch(cands[next], false)
			next++
		case <-hedgeC:
			hedgeC = nil
			if inflight == 1 && next < len(cands) {
				rt.mHedges.Inc()
				launch(cands[next], true)
				next++
			}
		case <-ctx.Done():
			return upResult{}, failures, false
		}
	}
}

// attempt runs one upstream request with the per-attempt budget and
// reports the outcome on ch. Health is scored here — except for losers
// canceled after another attempt won, which say nothing about the
// replica's health.
func (rt *Router) attempt(ctx context.Context, replica int, hedged bool,
	mk func(ctx context.Context, replica int) (*http.Request, error), ch chan<- upResult) {

	actx, cancel := context.WithTimeout(ctx, rt.cfg.UpstreamTimeout)
	defer cancel()
	start := time.Now()
	res := upResult{replica: replica, hedge: hedged}
	req, err := mk(actx, replica)
	if err != nil {
		res.err = err
		ch <- res
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		if ctx.Err() == nil || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// A real failure (connect refused, reset, or this attempt's
			// own timeout) — not a cancellation by the winning attempt.
			rt.health[replica].recordOutcome(false, 0, rt.cfg.DownAfter)
		}
		ch <- res
		return
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.ctype = resp.Header.Get("Content-Type")
	res.body, err = io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
	if err != nil {
		res.err = err
		res.status = 0
		if ctx.Err() == nil {
			rt.health[replica].recordOutcome(false, 0, rt.cfg.DownAfter)
		}
		ch <- res
		return
	}
	latMs := float64(time.Since(start)) / float64(time.Millisecond)
	rt.health[replica].recordOutcome(res.status < http.StatusInternalServerError, latMs, rt.cfg.DownAfter)
	ch <- res
}

// backoff returns the jittered exponential delay before failover
// attempt k (k >= 1): base·2^(k-1) capped at RetryMax, then scaled by
// [1, 2) deterministic jitter.
func (rt *Router) backoff(k int) time.Duration {
	d := rt.cfg.RetryBase
	for i := 1; i < k && d < rt.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > rt.cfg.RetryMax {
		d = rt.cfg.RetryMax
	}
	u := rhash.UnitFloat(rt.cfg.Seed, kRetryBackoff, rt.jitterSeq.Add(1))
	return time.Duration(float64(d) * (1 + u))
}

// hedgeDelay derives the hedge trigger from the primary's observed p99,
// clamped into [HedgeMin, HedgeMax]; with no latency history yet it
// hedges aggressively at HedgeMin.
func (rt *Router) hedgeDelay(primary int) time.Duration {
	d := time.Duration(rt.health[primary].hedgeDelayMs() * float64(time.Millisecond))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	return d
}

// sleepCtx sleeps d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// setRouteHeaders stamps the routing verdict on the winning response
// and increments the matching counters AT THE SAME CODE POINT — that
// identity is what makes geobench's accounting exact: the sum of
// X-Router-Failovers values seen by clients must equal the
// georouter.failovers delta on /metrics, and the count of
// "X-Router-Hedge: won" answers must equal georouter.hedge_wins.
func (rt *Router) setRouteHeaders(w http.ResponseWriter, win upResult, failures int) {
	w.Header().Set("X-Router-Replica", strconv.Itoa(win.replica))
	if failures > 0 {
		w.Header().Set("X-Router-Failovers", strconv.Itoa(failures))
		rt.mFailovers.Add(int64(failures))
	}
	if win.hedge {
		w.Header().Set("X-Router-Hedge", "won")
		rt.mHedgeWins.Inc()
	}
}

// proxy writes the winning upstream answer verbatim (status + body;
// Content-Type from upstream, X-Request-Id already set once by observe).
func (rt *Router) proxy(w http.ResponseWriter, win upResult, failures int) {
	rt.setRouteHeaders(w, win, failures)
	if win.ctype != "" {
		w.Header().Set("Content-Type", win.ctype)
	}
	w.WriteHeader(win.status)
	if _, err := w.Write(win.body); err != nil {
		rt.writeErrs.Inc()
	}
}

// handleLookup routes GET /lookup?ip=A.B.C.D to the owner of ip's
// prefix range, with failover and (optionally) hedging.
func (rt *Router) handleLookup(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		rt.writeJSON(w, http.StatusMethodNotAllowed, errBody{"use GET"})
		return
	}
	raw := req.URL.Query().Get("ip")
	if raw == "" {
		rt.writeJSON(w, http.StatusBadRequest, errBody{"missing ip parameter"})
		return
	}
	a, err := ipaddr.Parse(raw)
	if err != nil {
		rt.writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	primary := rt.ranges.ReplicaFor(a)
	cands := rt.candidates(primary)
	if len(cands) == 0 {
		rt.writeUnavailable(w, primary)
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	reqID := req.Header.Get(obs.RequestIDHeader)
	win, failures, ok := rt.execute(ctx, cands, true, func(actx context.Context, replica int) (*http.Request, error) {
		up, err := http.NewRequestWithContext(actx, http.MethodGet,
			rt.cfg.ReplicaURLs[replica]+"/lookup?"+req.URL.RawQuery, nil)
		if err == nil {
			up.Header.Set(obs.RequestIDHeader, reqID)
		}
		return up, err
	})
	if !ok {
		if ctx.Err() != nil {
			rt.writeJSON(w, http.StatusGatewayTimeout, errBody{"request deadline expired"})
			return
		}
		rt.writeUnavailable(w, primary)
		return
	}
	rt.proxy(w, win, failures)
}

// batchIn/batchOut mirror serve's /batch documents.
type batchIn struct {
	IPs []string `json:"ips"`
}

type batchOut struct {
	Results []serve.LookupResult `json:"results"`
}

// handleBatch scatters POST /batch across the replicas owning each
// address's range and gathers the answers back into input order.
// Unparseable addresses are answered locally (the replicas would only
// echo the same per-item error); any sub-batch whose candidates are all
// exhausted fails the whole request with 503 — a partial batch would
// silently violate the one-result-per-input contract.
func (rt *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		rt.writeJSON(w, http.StatusMethodNotAllowed, errBody{"use POST"})
		return
	}
	var in batchIn
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<22))
	if err := dec.Decode(&in); err != nil {
		rt.writeJSON(w, http.StatusBadRequest, errBody{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(in.IPs) == 0 {
		rt.writeJSON(w, http.StatusBadRequest, errBody{"empty batch"})
		return
	}
	if len(in.IPs) > rt.cfg.MaxBatch {
		rt.writeJSON(w, http.StatusRequestEntityTooLarge,
			errBody{fmt.Sprintf("batch of %d exceeds limit %d", len(in.IPs), rt.cfg.MaxBatch)})
		return
	}

	out := batchOut{Results: make([]serve.LookupResult, len(in.IPs))}
	type group struct {
		ips     []string
		indices []int
	}
	groups := map[int]*group{}
	for i, raw := range in.IPs {
		a, err := ipaddr.Parse(raw)
		if err != nil {
			out.Results[i] = serve.LookupResult{IP: raw, Error: err.Error()}
			continue
		}
		p := rt.ranges.ReplicaFor(a)
		g := groups[p]
		if g == nil {
			g = &group{}
			groups[p] = g
		}
		g.ips = append(g.ips, raw)
		g.indices = append(g.indices, i)
	}

	ctx, cancel := context.WithTimeout(req.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	reqID := req.Header.Get(obs.RequestIDHeader)

	type groupResult struct {
		primary  int
		win      upResult
		failures int
		ok       bool
	}
	resCh := make(chan groupResult, len(groups))
	for primary, g := range groups {
		primary, g := primary, g
		cands := rt.candidates(primary)
		if len(cands) == 0 {
			resCh <- groupResult{primary: primary}
			continue
		}
		payload, err := json.Marshal(batchIn{IPs: g.ips})
		if err != nil {
			resCh <- groupResult{primary: primary}
			continue
		}
		go func() {
			win, failures, ok := rt.execute(ctx, cands, false, func(actx context.Context, replica int) (*http.Request, error) {
				up, err := http.NewRequestWithContext(actx, http.MethodPost,
					rt.cfg.ReplicaURLs[replica]+"/batch", bytes.NewReader(payload))
				if err == nil {
					up.Header.Set("Content-Type", "application/json")
					up.Header.Set(obs.RequestIDHeader, reqID)
				}
				return up, err
			})
			resCh <- groupResult{primary: primary, win: win, failures: failures, ok: ok}
		}()
	}

	totalFailovers := 0
	hedgeWon := false
	replicas := make([]string, 0, len(groups))
	for range groups {
		gr := <-resCh
		if !gr.ok {
			if ctx.Err() != nil {
				rt.writeJSON(w, http.StatusGatewayTimeout, errBody{"request deadline expired"})
				return
			}
			rt.writeUnavailable(w, gr.primary)
			return
		}
		var sub batchOut
		if gr.win.status != http.StatusOK || json.Unmarshal(gr.win.body, &sub) != nil ||
			len(sub.Results) != len(groups[gr.primary].indices) {
			// The replica answered but not with a usable batch document
			// (e.g. a 429 shed); the whole batch fails loudly rather
			// than fabricating per-item results.
			rt.writeJSON(w, http.StatusBadGateway,
				errBody{fmt.Sprintf("replica %d answered status %d for sub-batch", gr.win.replica, gr.win.status)})
			return
		}
		for j, idx := range groups[gr.primary].indices {
			out.Results[idx] = sub.Results[j]
		}
		totalFailovers += gr.failures
		hedgeWon = hedgeWon || gr.win.hedge
		replicas = append(replicas, strconv.Itoa(gr.win.replica))
	}

	rt.setRouteHeaders(w, upResult{replica: -1, hedge: hedgeWon}, totalFailovers)
	// The scatter touched several replicas; report them all (the -1 from
	// setRouteHeaders is replaced — batch answers are multi-replica).
	w.Header().Set("X-Router-Replica", joinSorted(replicas))
	rt.writeJSON(w, http.StatusOK, out)
}

// joinSorted renders the touched-replica set deterministically.
func joinSorted(ids []string) string {
	// Insertion sort; the set is at most the replica count.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += id
	}
	return out
}

// replicaStatus is one replica's entry in the /healthz fleet view.
type replicaStatus struct {
	ID          int     `json:"id"`
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	ConsecFails int     `json:"consec_fails"`
	LatencyMs   float64 `json:"ewma_latency_ms"`
	ErrorRate   float64 `json:"ewma_error_rate"`
	Downs       uint64  `json:"downs"`
	Readmits    uint64  `json:"readmits"`
	Range       string  `json:"range"`
}

// healthBody is the /healthz response: router liveness plus the fleet
// health table geobench's chaos harness polls for readmission.
type healthBody struct {
	Status      string          `json:"status"`
	Replication int             `json:"replication"`
	Replicas    []replicaStatus `json:"replicas"`
}

// handleHealthz serves GET /healthz: always 200 while the process runs;
// the per-replica table is the payload.
func (rt *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	body := healthBody{Status: "ok", Replication: rt.cfg.Replication}
	for i, h := range rt.health {
		up, cf, lat, errRate, downs, readmits := h.snapshot()
		state := "down"
		if up {
			state = "up"
		}
		r := rt.ranges[i]
		body.Replicas = append(body.Replicas, replicaStatus{
			ID: i, Addr: rt.cfg.ReplicaURLs[i], State: state, ConsecFails: cf,
			LatencyMs: lat, ErrorRate: errRate, Downs: downs, Readmits: readmits,
			Range: fmt.Sprintf("%s-%s", r.Lo, r.Hi),
		})
	}
	rt.writeJSON(w, http.StatusOK, body)
}

// handleReadyz serves GET /readyz: ready only when every prefix range
// has at least one live candidate and the router is not draining.
func (rt *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if rt.Draining() {
		rt.writeJSON(w, http.StatusServiceUnavailable, errBody{"draining"})
		return
	}
	for i := range rt.ranges {
		if len(rt.candidates(i)) == 0 {
			rt.writeJSON(w, http.StatusServiceUnavailable,
				errBody{fmt.Sprintf("range of replica %d has no live candidate", i)})
			return
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleVersion proxies GET /version from the first live replica — the
// fleet serves one artifact, any live member can answer for it.
func (rt *Router) handleVersion(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), rt.cfg.UpstreamTimeout)
	defer cancel()
	for i := range rt.cfg.ReplicaURLs {
		if !rt.health[i].Up() {
			continue
		}
		up, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.ReplicaURLs[i]+"/version", nil)
		if err != nil {
			continue
		}
		up.Header.Set(obs.RequestIDHeader, req.Header.Get(obs.RequestIDHeader))
		resp, err := rt.client.Do(up)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("X-Router-Replica", strconv.Itoa(i))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(body); err != nil {
			rt.writeErrs.Inc()
		}
		return
	}
	rt.writeJSON(w, http.StatusServiceUnavailable, errBody{"no live replica"})
}

// handleMetrics refreshes the per-replica gauges and renders the
// registry in Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		rt.writeJSON(w, http.StatusMethodNotAllowed, errBody{"use GET"})
		return
	}
	for i, h := range rt.health {
		up, _, lat, errRate, downs, readmits := h.snapshot()
		rl := telemetry.Label{Key: "replica", Value: strconv.Itoa(i)}
		upVal := 0.0
		if up {
			upVal = 1
		}
		rt.reg.Gauge(telemetry.Name("georouter.replica.up", rl)).Set(upVal)
		rt.reg.Gauge(telemetry.Name("georouter.replica.ewma_latency_ms", rl)).Set(lat)
		rt.reg.Gauge(telemetry.Name("georouter.replica.ewma_error_rate", rl)).Set(errRate)
		rt.reg.Gauge(telemetry.Name("georouter.replica.downs", rl)).Set(float64(downs))
		rt.reg.Gauge(telemetry.Name("georouter.replica.readmits", rl)).Set(float64(readmits))
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WritePrometheus(w, obs.LabeledRegistry{Label: rt.cfg.MetricsLabel, Reg: rt.reg}); err != nil {
		rt.writeErrs.Inc()
	}
}

// adminReplicaResponse acknowledges a fleet-control action.
type adminReplicaResponse struct {
	Replica int    `json:"replica"`
	Action  string `json:"action"`
	Status  string `json:"status"`
}

// handleAdminReplica serves POST /admin/replica?replica=N&action=A with
// A in stop|start|stall|unstall — the chaos-injection surface geobench
// uses to kill and revive replicas mid-run. Token-guarded like serve's
// /admin/reload; 501 when the router has no fleet controller (replicas
// are external processes it cannot manipulate).
func (rt *Router) handleAdminReplica(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		rt.writeJSON(w, http.StatusMethodNotAllowed, errBody{"use POST"})
		return
	}
	if rt.cfg.AdminToken == "" {
		rt.writeJSON(w, http.StatusForbidden, errBody{"admin endpoint disabled (no admin token configured)"})
		return
	}
	if subtle.ConstantTimeCompare([]byte(req.Header.Get("X-Admin-Token")), []byte(rt.cfg.AdminToken)) != 1 {
		rt.writeJSON(w, http.StatusForbidden, errBody{"bad admin token"})
		return
	}
	i, err := strconv.Atoi(req.URL.Query().Get("replica"))
	if err != nil || i < 0 || i >= len(rt.cfg.ReplicaURLs) {
		rt.writeJSON(w, http.StatusBadRequest, errBody{"replica must be a valid replica index"})
		return
	}
	if rt.cfg.Controller == nil {
		rt.writeJSON(w, http.StatusNotImplemented, errBody{"no fleet controller attached"})
		return
	}
	action := req.URL.Query().Get("action")
	switch action {
	case "stop":
		err = rt.cfg.Controller.StopReplica(i)
	case "start":
		err = rt.cfg.Controller.StartReplica(i)
	case "stall":
		err = rt.cfg.Controller.StallReplica(i, true)
	case "unstall":
		err = rt.cfg.Controller.StallReplica(i, false)
	default:
		rt.writeJSON(w, http.StatusBadRequest, errBody{"action must be stop|start|stall|unstall"})
		return
	}
	if err != nil {
		rt.writeJSON(w, http.StatusConflict, errBody{err.Error()})
		return
	}
	rt.writeJSON(w, http.StatusOK, adminReplicaResponse{Replica: i, Action: action, Status: "ok"})
}

// probeLoop actively checks one replica's /readyz every ProbeInterval.
// The optional fault profile can stall a probe deterministically; a
// stall at or beyond the probe budget counts as a probe failure without
// tying up a connection.
func (rt *Router) probeLoop(i int) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	var n uint64
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		n++
		rt.mProbes.Inc()
		if rt.cfg.Prof != nil && rt.cfg.Prof.Enabled() {
			stall := rt.cfg.Prof.ProbeStallMs(rt.cfg.Seed, uint64(i), n)
			if stall > 0 {
				if time.Duration(stall*float64(time.Millisecond)) >= rt.cfg.ProbeTimeout {
					rt.mProbeFails.Inc()
					rt.health[i].recordProbe(false, rt.cfg.DownAfter, rt.cfg.UpAfter)
					continue
				}
				if !sleepDone(rt.stop, time.Duration(stall*float64(time.Millisecond))) {
					return
				}
			}
		}
		ok := rt.probeOnce(i)
		if !ok {
			rt.mProbeFails.Inc()
		}
		rt.health[i].recordProbe(ok, rt.cfg.DownAfter, rt.cfg.UpAfter)
	}
}

// probeOnce performs one GET /readyz against replica i.
func (rt *Router) probeOnce(i int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.ReplicaURLs[i]+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// sleepDone sleeps d or until stop closes; reports whether the sleep
// completed.
func sleepDone(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
