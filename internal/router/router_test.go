package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"geoloc/internal/ipaddr"
	"geoloc/internal/obs"
	"geoloc/internal/serve"
	"geoloc/internal/telemetry"
)

// fakeReplica is a scriptable upstream: per-path handlers plus counters
// the tests assert routing decisions against.
type fakeReplica struct {
	id       int
	lookups  atomic.Int64
	batches  atomic.Int64
	ready    atomic.Bool
	fail     atomic.Bool // 500 every data request
	stallDur atomic.Int64 // ns to sleep before answering /lookup
	ts       *httptest.Server
}

func newFakeReplica(t *testing.T, id int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", func(w http.ResponseWriter, r *http.Request) {
		f.lookups.Add(1)
		if d := f.stallDur.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		if f.fail.Load() {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.LookupResult{
			IP: r.URL.Query().Get("ip"), Method: fmt.Sprintf("replica-%d", id)})
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		if f.fail.Load() {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		var in batchIn
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := batchOut{}
		for _, ip := range in.IPs {
			out.Results = append(out.Results, serve.LookupResult{
				IP: ip, Method: fmt.Sprintf("replica-%d", id)})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// newTestRouter wires a router (not started — probes are opt-in per
// test) over the fakes and serves it on an httptest listener.
func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeReplica) (*Router, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	for _, f := range fakes {
		cfg.ReplicaURLs = append(cfg.ReplicaURLs, f.ts.URL)
	}
	reg := telemetry.New()
	rt, err := New(cfg, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts, reg
}

// addrInRange returns an address owned by replica i of an n-way
// partition (the range midpoint, to stay away from boundary effects).
func addrInRange(n, i int) string {
	rs := Partition(n)
	mid := ipaddr.Addr((uint64(rs[i].Lo) + uint64(rs[i].Hi)) / 2)
	return mid.String()
}

// TestRoutesByRange pins the core contract: each lookup lands on the
// replica owning its prefix range, and the response says which replica
// answered.
func TestRoutesByRange(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2), newFakeReplica(t, 3)}
	_, ts, _ := newTestRouter(t, Config{Replication: 1}, fakes...)
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/lookup?ip=" + addrInRange(4, i))
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		var res serve.LookupResult
		json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d range: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Router-Replica"); got != strconv.Itoa(i) {
			t.Errorf("replica %d range answered by %q", i, got)
		}
		if want := fmt.Sprintf("replica-%d", i); res.Method != want {
			t.Errorf("result method %q, want %q", res.Method, want)
		}
	}
	for i, f := range fakes {
		if n := f.lookups.Load(); n != 1 {
			t.Errorf("replica %d saw %d lookups, want 1", i, n)
		}
	}
}

// TestFailoverCarriesOriginalIDOnce is the satellite regression test: a
// failed-over answer must carry the client's X-Request-Id exactly once
// (set by the router's observe middleware, never duplicated from the
// upstream response), plus an X-Router-Failovers count that matches the
// georouter.failovers metric.
func TestFailoverCarriesOriginalIDOnce(t *testing.T) {
	primary, fallback := newFakeReplica(t, 0), newFakeReplica(t, 1)
	primary.fail.Store(true)
	_, ts, reg := newTestRouter(t, Config{Replication: 2}, primary, fallback)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/lookup?ip="+addrInRange(2, 0), nil)
	req.Header.Set(obs.RequestIDHeader, "abc-failover-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	ids := resp.Header.Values(obs.RequestIDHeader)
	if len(ids) != 1 || ids[0] != "abc-failover-test" {
		t.Fatalf("X-Request-Id values = %v, want exactly [abc-failover-test]", ids)
	}
	if got := resp.Header.Get("X-Router-Failovers"); got != "1" {
		t.Errorf("X-Router-Failovers = %q, want 1", got)
	}
	if got := resp.Header.Get("X-Router-Replica"); got != "1" {
		t.Errorf("answered by replica %q, want 1", got)
	}
	if primary.lookups.Load() == 0 {
		t.Error("primary was never tried")
	}
	if got := reg.Counter("georouter.failovers").Value(); got != 1 {
		t.Errorf("georouter.failovers = %d, want 1", got)
	}
}

// TestUpstreamIDForwarded pins that the router forwards the request ID
// on the upstream hop (the replica sees the same ID the client sent).
func TestUpstreamIDForwarded(t *testing.T) {
	var seen atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get(obs.RequestIDHeader))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.LookupResult{IP: "x"})
	})
	up := httptest.NewServer(mux)
	t.Cleanup(up.Close)
	reg := telemetry.New()
	rt, err := New(Config{ReplicaURLs: []string{up.URL}, Replication: 1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/lookup?ip=10.0.0.1", nil)
	req.Header.Set(obs.RequestIDHeader, "fwd-test-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got, _ := seen.Load().(string); got != "fwd-test-7" {
		t.Fatalf("replica saw X-Request-Id %q, want fwd-test-7", got)
	}
}

// TestDeadRangeAnswers503Fast pins the bounded failure domain: with
// Replication=1 and a dead primary, its range answers 503 with a
// Retry-After hint — quickly, never a hang — while the other range
// keeps answering 200.
func TestDeadRangeAnswers503Fast(t *testing.T) {
	dead, live := newFakeReplica(t, 0), newFakeReplica(t, 1)
	dead.ts.Close() // connections now refuse
	_, ts, reg := newTestRouter(t, Config{
		Replication:     1,
		UpstreamTimeout: 500 * time.Millisecond,
		RetryAfter:      2 * time.Second,
	}, dead, live)

	start := time.Now()
	resp, err := http.Get(ts.URL + "/lookup?ip=" + addrInRange(2, 0))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-range answer took %v; the failure domain must be bounded", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 2 || ra > 4 {
		t.Fatalf("Retry-After = %q, want an integer in [2, 4]", resp.Header.Get("Retry-After"))
	}
	if reg.Counter("georouter.range_unavailable").Value() == 0 {
		t.Error("range_unavailable counter not incremented")
	}

	resp, err = http.Get(ts.URL + "/lookup?ip=" + addrInRange(2, 1))
	if err != nil {
		t.Fatalf("live-range lookup: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live range status %d, want 200 — the failure leaked across ranges", resp.StatusCode)
	}
}

// routerHealth fetches and decodes the router's /healthz fleet table.
func routerHealth(t *testing.T, url string) healthBody {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body healthBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return body
}

// waitReplicaState polls /healthz until replica i reports the state.
func waitReplicaState(t *testing.T, url string, i int, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if routerHealth(t, url).Replicas[i].State == state {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica %d never reached state %q", i, state)
}

// TestProbeDownAndReadmission drives the full health cycle through real
// probes: a replica that stops passing /readyz goes down (and /readyz on
// the router goes 503 for its uncovered range), then comes back only
// after UpAfter consecutive probe successes.
func TestProbeDownAndReadmission(t *testing.T) {
	f0, f1 := newFakeReplica(t, 0), newFakeReplica(t, 1)
	rt, ts, _ := newTestRouter(t, Config{
		Replication:   1,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       3,
	}, f0, f1)
	rt.Start()

	waitReplicaState(t, ts.URL, 0, "up")
	f0.ready.Store(false)
	waitReplicaState(t, ts.URL, 0, "down")

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router /readyz = %d with an uncovered range, want 503", resp.StatusCode)
	}

	f0.ready.Store(true)
	waitReplicaState(t, ts.URL, 0, "up")
	h := routerHealth(t, ts.URL)
	if h.Replicas[0].Readmits < 1 {
		t.Errorf("readmits = %d, want >= 1", h.Replicas[0].Readmits)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz = %d after readmission, want 200", resp.StatusCode)
	}
}

// TestHedgeWinsOnSlowPrimary pins hedging: a primary answering slower
// than the hedge delay loses the race to the fallback, the answer is
// marked "X-Router-Hedge: won", and the hedge counters account for it.
func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	slow, fast := newFakeReplica(t, 0), newFakeReplica(t, 1)
	slow.stallDur.Store(int64(400 * time.Millisecond))
	_, ts, reg := newTestRouter(t, Config{
		Replication: 2,
		Hedge:       true,
		HedgeMin:    5 * time.Millisecond,
		HedgeMax:    10 * time.Millisecond,
	}, slow, fast)

	resp, err := http.Get(ts.URL + "/lookup?ip=" + addrInRange(2, 0))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	var res serve.LookupResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Router-Hedge"); got != "won" {
		t.Fatalf("X-Router-Hedge = %q, want won", got)
	}
	if got := resp.Header.Get("X-Router-Replica"); got != "1" {
		t.Errorf("answered by %q, want the hedge target 1", got)
	}
	if resp.Header.Get("X-Router-Failovers") != "" {
		t.Error("hedge win must not count as a failover")
	}
	if reg.Counter("georouter.hedges").Value() != 1 || reg.Counter("georouter.hedge_wins").Value() != 1 {
		t.Errorf("hedge counters = %d launched / %d won, want 1/1",
			reg.Counter("georouter.hedges").Value(), reg.Counter("georouter.hedge_wins").Value())
	}
}

// TestBatchScatterGather pins the scatter-gather path: results come
// back in input order, each answered by the replica owning its range,
// unparseable addresses answered locally, and the replica set reported.
func TestBatchScatterGather(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, 0), newFakeReplica(t, 1), newFakeReplica(t, 2), newFakeReplica(t, 3)}
	_, ts, _ := newTestRouter(t, Config{Replication: 1}, fakes...)

	ips := []string{addrInRange(4, 2), addrInRange(4, 0), "not-an-ip", addrInRange(4, 3), addrInRange(4, 0)}
	payload, _ := json.Marshal(batchIn{IPs: ips})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var out batchOut
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != len(ips) {
		t.Fatalf("%d results for %d inputs", len(out.Results), len(ips))
	}
	wantMethods := []string{"replica-2", "replica-0", "", "replica-3", "replica-0"}
	for i, want := range wantMethods {
		if out.Results[i].IP != ips[i] {
			t.Errorf("result %d is for %q, want %q (order lost)", i, out.Results[i].IP, ips[i])
		}
		if out.Results[i].Method != want {
			t.Errorf("result %d answered by %q, want %q", i, out.Results[i].Method, want)
		}
	}
	if out.Results[2].Error == "" {
		t.Error("unparseable address has no error")
	}
	if got := resp.Header.Get("X-Router-Replica"); got != "0,2,3" {
		t.Errorf("X-Router-Replica = %q, want 0,2,3", got)
	}
	if fakes[1].batches.Load() != 0 {
		t.Error("replica 1 saw a sub-batch it owns no address of")
	}
}

// TestBatchFailsWholeWhenRangeDead pins that a batch touching a dead,
// unreplicated range fails loudly (503 + Retry-After) instead of
// returning a partial result set.
func TestBatchFailsWholeWhenRangeDead(t *testing.T) {
	dead, live := newFakeReplica(t, 0), newFakeReplica(t, 1)
	dead.ts.Close()
	_, ts, _ := newTestRouter(t, Config{
		Replication:     1,
		UpstreamTimeout: 500 * time.Millisecond,
	}, dead, live)

	payload, _ := json.Marshal(batchIn{IPs: []string{addrInRange(2, 0), addrInRange(2, 1)}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 for a batch touching a dead range", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestBatchFailover pins that a sub-batch fails over to the range's
// fallback and the response accounts the failover.
func TestBatchFailover(t *testing.T) {
	primary, fallback := newFakeReplica(t, 0), newFakeReplica(t, 1)
	primary.fail.Store(true)
	_, ts, reg := newTestRouter(t, Config{Replication: 2}, primary, fallback)

	payload, _ := json.Marshal(batchIn{IPs: []string{addrInRange(2, 0)}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var out batchOut
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if out.Results[0].Method != "replica-1" {
		t.Errorf("answered by %q, want replica-1", out.Results[0].Method)
	}
	if got := resp.Header.Get("X-Router-Failovers"); got != "1" {
		t.Errorf("X-Router-Failovers = %q, want 1", got)
	}
	if reg.Counter("georouter.failovers").Value() != 1 {
		t.Errorf("georouter.failovers = %d, want 1", reg.Counter("georouter.failovers").Value())
	}
}

// TestRouterMetricsExposition pins the /metrics surface: the status
// ledger and per-replica health gauges render in Prometheus format.
func TestRouterMetricsExposition(t *testing.T) {
	f0, f1 := newFakeReplica(t, 0), newFakeReplica(t, 1)
	_, ts, _ := newTestRouter(t, Config{Replication: 2, MetricsLabel: "router-test"}, f0, f1)

	resp, err := http.Get(ts.URL + "/lookup?ip=" + addrInRange(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exp, err := obs.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	if s := exp.Find("georouter_status_total", map[string]string{"code": "200", "plane": "data"}); len(s) != 1 || s[0].Value < 1 {
		t.Errorf("georouter_status_total{code=200,plane=data} = %v, want one sample >= 1", s)
	}
	if s := exp.Find("georouter_replica_up", map[string]string{"replica": "0"}); len(s) != 1 || s[0].Value != 1 {
		t.Errorf("georouter_replica_up{replica=0} = %v, want one sample == 1", s)
	}
}

// TestAdminReplicaGuard pins the admin surface: token required, 501
// without a controller, bad inputs rejected.
func TestAdminReplicaGuard(t *testing.T) {
	f0 := newFakeReplica(t, 0)
	_, ts, _ := newTestRouter(t, Config{Replication: 1, AdminToken: "sekrit"}, f0)

	post := func(path, token string) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, nil)
		if token != "" {
			req.Header.Set("X-Admin-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/admin/replica?replica=0&action=stop", ""); got != http.StatusForbidden {
		t.Errorf("no token: %d, want 403", got)
	}
	if got := post("/admin/replica?replica=0&action=stop", "wrong"); got != http.StatusForbidden {
		t.Errorf("bad token: %d, want 403", got)
	}
	if got := post("/admin/replica?replica=0&action=stop", "sekrit"); got != http.StatusNotImplemented {
		t.Errorf("no controller: %d, want 501", got)
	}
	if got := post("/admin/replica?replica=9&action=stop", "sekrit"); got != http.StatusBadRequest {
		t.Errorf("bad replica index: %d, want 400", got)
	}
}

// TestLookupValidation pins the router's own input validation (no
// upstream round-trip for garbage).
func TestLookupValidation(t *testing.T) {
	f0 := newFakeReplica(t, 0)
	_, ts, _ := newTestRouter(t, Config{Replication: 1}, f0)
	for _, c := range []struct {
		url  string
		want int
	}{
		{"/lookup", http.StatusBadRequest},
		{"/lookup?ip=banana", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
	if f0.lookups.Load() != 0 {
		t.Error("invalid input reached a replica")
	}
}
