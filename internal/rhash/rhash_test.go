package rhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	f := func(a, b uint64) bool {
		return Hash(a, b) == Hash(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashOrderSensitive(t *testing.T) {
	if Hash(1, 2) == Hash(2, 1) {
		t.Error("Hash should be order sensitive")
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("alpha") == HashString("beta") {
		t.Error("distinct strings should hash differently")
	}
	if HashString("") == HashString("a") {
		t.Error("empty and non-empty should differ")
	}
}

func TestStreamReproducible(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestStreamDifferentSeedsDiffer(t *testing.T) {
	a := New(42, 7)
	b := New(42, 8)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("differently-seeded streams agree %d/64 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %.4f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3.5)
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.1 {
		t.Errorf("exp mean = %.3f, want ~3.5", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal must be positive, got %v", v)
		}
	}
}

func TestParetoAboveMin(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("pareto below min: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %.4f", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(10)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 6})]++
	}
	if f := float64(counts[2]) / n; math.Abs(f-6.0/9) > 0.02 {
		t.Errorf("heaviest weight picked %.3f of the time, want ~0.667", f)
	}
	if f := float64(counts[0]) / n; math.Abs(f-1.0/9) > 0.02 {
		t.Errorf("lightest weight picked %.3f of the time, want ~0.111", f)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty weights")
		}
	}()
	New(1).Choice(nil)
}

func TestUnitFloatDeterministic(t *testing.T) {
	if UnitFloat(1, 2, 3) != UnitFloat(1, 2, 3) {
		t.Error("UnitFloat must be deterministic")
	}
	if v := UnitFloat(9, 9); v < 0 || v >= 1 {
		t.Errorf("UnitFloat out of range: %v", v)
	}
}

func TestNewLabeledDistinct(t *testing.T) {
	a := NewLabeled(1, "lastmile")
	b := NewLabeled(1, "jitter")
	if a.Uint64() == b.Uint64() {
		t.Error("different labels should produce different streams")
	}
}
