// Package rhash provides deterministic, keyed pseudo-randomness.
//
// Every stochastic decision in the simulator — where a city sits, which AS a
// probe joins, how much last-mile delay a host has, how much jitter a single
// ping experiences — is derived from a hash of the world seed and a stable
// label path. This makes whole worlds and whole measurement campaigns
// reproducible bit-for-bit from a single seed, which is what lets the test
// suite assert on exact counts.
package rhash

import "math"

// splitmix64 is the SplitMix64 finalizer; a fast, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash mixes an arbitrary number of 64-bit parts into a single 64-bit value.
func Hash(parts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi fractional bits as a fixed offset
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// HashString folds a string label into a 64-bit value (FNV-1a).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stream is a deterministic random stream seeded from a hash key. The zero
// value is usable but every zero-seeded stream is identical; construct
// streams with New.
type Stream struct {
	state uint64
	// spare holds a second normal deviate from Box-Muller, NaN when absent.
	spare    float64
	hasSpare bool
}

// New returns a Stream keyed by the given parts. Streams with the same parts
// yield identical sequences.
func New(parts ...uint64) *Stream {
	return &Stream{state: Hash(parts...)}
}

// NewLabeled returns a Stream keyed by a seed and a string label.
func NewLabeled(seed uint64, label string) *Stream {
	return New(seed, HashString(label))
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return splitmix64(s.state)
}

// Float64 returns the next value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rhash: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal deviate (Box-Muller).
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r = u*u + v*v
		if r > 0 && r < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r) / r)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// LogNormal returns a log-normal deviate with the given location (mu) and
// scale (sigma) parameters of the underlying normal.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponential deviate with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto-like heavy-tailed deviate with the given
// minimum and shape alpha (> 0). Larger alpha concentrates near min.
func (s *Stream) Pareto(min, alpha float64) float64 {
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return min / math.Pow(u, 1/alpha)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a random index weighted by the non-negative weights. It
// panics when weights is empty or sums to zero.
func (s *Stream) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rhash: Choice needs positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// UnitFloat derives a single deterministic value in [0, 1) from key parts
// without constructing a stream. Handy for per-entity static attributes.
func UnitFloat(parts ...uint64) float64 {
	return float64(Hash(parts...)>>11) / (1 << 53)
}
