package geoloc

// Integration tests: end-to-end invariants of a full campaign that span
// every subsystem (world → netsim → atlas → sanitize → core → techniques).
// They run at medium scale, which is large enough for the paper's shapes
// to emerge yet fast enough for the ordinary test run.

import (
	"math"
	"testing"

	"geoloc/internal/experiments"
	"geoloc/internal/geo"
	"geoloc/internal/stats"
	"geoloc/internal/world"
)

var mediumSys = func() *System {
	return NewSystemFromConfig(world.MediumConfig(), experiments.QuickOptions())
}()

func TestIntegrationSanitizerExactAtMediumScale(t *testing.T) {
	c := mediumSys.Campaign()
	cfg := world.MediumConfig()
	if len(c.RemovedAnchors) != cfg.CorruptAnchors {
		t.Errorf("removed %d anchors, want %d", len(c.RemovedAnchors), cfg.CorruptAnchors)
	}
	if len(c.RemovedProbes) != cfg.CorruptProbes {
		t.Errorf("removed %d probes, want %d", len(c.RemovedProbes), cfg.CorruptProbes)
	}
	for _, id := range c.RemovedAnchors {
		if !c.W.Host(id).Corrupted {
			t.Error("sanitizer removed a clean anchor")
		}
	}
	for _, id := range c.RemovedProbes {
		if !c.W.Host(id).Corrupted {
			t.Error("sanitizer removed a clean probe")
		}
	}
}

func TestIntegrationCBGCityLevelShare(t *testing.T) {
	c := mediumSys.Campaign()
	var errs []float64
	for ti := range c.Targets {
		if est, ok := c.TargetRTT.LocateSubset(ti, nil, geo.TwoThirdsC); ok {
			errs = append(errs, c.ErrorKm(ti, est))
		}
	}
	share := stats.FractionBelow(errs, 40)
	// The paper's headline is 73%; the medium world must land in the same
	// regime (±20 points), or the calibration has drifted.
	if share < 0.53 || share > 0.95 {
		t.Errorf("city-level share = %.2f, want ~0.73 regime", share)
	}
}

func TestIntegrationRemovingCloseVPsDegrades(t *testing.T) {
	c := mediumSys.Campaign()
	var all, far []float64
	for ti := 0; ti < len(c.Targets); ti += 2 {
		if est, ok := c.TargetRTT.LocateSubset(ti, nil, geo.TwoThirdsC); ok {
			all = append(all, c.ErrorKm(ti, est))
		}
		var subset []int
		for vp, h := range c.VPs {
			if geo.Distance(h.Reported, c.Targets[ti].Loc) > 40 {
				subset = append(subset, vp)
			}
		}
		if est, ok := c.TargetRTT.LocateSubset(ti, subset, geo.TwoThirdsC); ok {
			far = append(far, c.ErrorKm(ti, est))
		}
	}
	mAll := stats.MustMedian(all)
	mFar := stats.MustMedian(far)
	// Fig 2c: 8 km → 120 km in the paper; require at least a 5× blowup.
	if mFar < 5*mAll {
		t.Errorf("removing close VPs: median %.1f → %.1f, want ≥5× degradation", mAll, mFar)
	}
}

func TestIntegrationFig5aShape(t *testing.T) {
	rep, err := mediumSys.Report("fig5a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("fig5a rows = %d", len(rep.Rows))
	}
}

func TestIntegrationDeterministicAcrossSystems(t *testing.T) {
	a := NewSystemFromConfig(world.TinyConfig(), experiments.QuickOptions())
	b := NewSystemFromConfig(world.TinyConfig(), experiments.QuickOptions())
	for ti := 0; ti < a.NumTargets(); ti += 3 {
		ea, erra := a.LocateCBG(ti)
		eb, errb := b.LocateCBG(ti)
		if (erra == nil) != (errb == nil) {
			t.Fatalf("target %d: divergent errors", ti)
		}
		if erra == nil && ea.Location != eb.Location {
			t.Fatalf("target %d: divergent estimates", ti)
		}
		sa, _ := a.LocateStreetLevel(ti)
		sb, _ := b.LocateStreetLevel(ti)
		if sa.Estimate.Location != sb.Estimate.Location || sa.Landmarks != sb.Landmarks {
			t.Fatalf("target %d: divergent street-level results", ti)
		}
	}
}

func TestIntegrationVPSelectionSignal(t *testing.T) {
	// The single selected VP must usually be among the geographically
	// closest: median distance of the selected VP well under the median
	// distance of a random VP.
	c := mediumSys.Campaign()
	var selDist, medianAll []float64
	for ti := range c.Targets {
		sel := c.RepRTT.ClosestVPs(ti, 1)
		if len(sel) == 0 {
			continue
		}
		selDist = append(selDist, geo.Distance(c.VPs[sel[0]].Loc, c.Targets[ti].Loc))
		medianAll = append(medianAll, geo.Distance(c.VPs[(ti*37)%len(c.VPs)].Loc, c.Targets[ti].Loc))
	}
	if stats.MustMedian(selDist) > stats.MustMedian(medianAll)/5 {
		t.Errorf("selected VP median distance %.0f km vs random %.0f km — selection signal too weak",
			stats.MustMedian(selDist), stats.MustMedian(medianAll))
	}
}

func TestIntegrationMatrixHasNoNegativeRTTs(t *testing.T) {
	c := mediumSys.Campaign()
	for vp := range c.TargetRTT.RTT {
		for ti := range c.TargetRTT.RTT[vp] {
			v := float64(c.TargetRTT.RTT[vp][ti])
			if !math.IsNaN(v) && v <= 0 {
				t.Fatalf("non-positive RTT %v at [%d][%d]", v, vp, ti)
			}
		}
	}
}

func TestIntegrationCampaignCounters(t *testing.T) {
	// The platform counted every measurement of the campaign: at least
	// (VPs × targets) target pings plus (VPs × targets × 3) rep pings minus
	// self-pairs, plus the sanitizer's mesh.
	c := mediumSys.Campaign()
	st := c.Platform.Stats()
	minPings := int64(len(c.VPs)-1) * int64(len(c.Targets)) * 4
	if st.Pings < minPings {
		t.Errorf("platform counted %d pings, expected at least %d", st.Pings, minPings)
	}
	if st.Credits <= 0 {
		t.Error("credits not accounted")
	}
}
